"""The bounded-register three-processor protocol (Section 6, Figure 3).

This is the paper's technically hardest construction: coordination for
three processors where every shared register takes one of finitely many
values.  The unbounded protocol's ``num`` field kept a *global* ordering
of processors; here it is replaced by a circular 9-position counter that
only ever supports a *local* (window-relative) ordering.

Mechanics (paper prose + Figure 3, concretized per DESIGN.md §5):

* Positions 1..9 are arranged circularly.  At any time all three
  registers lie within one of the overlapping windows (8..3), (2..6),
  (5..9) of width five, so the circular distance
  ``ahead(x, y) = ((x − y + 4) mod 9) − 4`` is a faithful local order.
* Processors run the unbounded protocol's advance/adopt/coin dynamics
  (:mod:`repro.core.three_unbounded`) pretending positions are nums.
* A *checkpoint* (position 3, 6 or 9 — a window's right end) gates
  progress: a leader may cross only if the last processor is within one
  step; otherwise the (at most two) leaders drop into the embedded
  two-processor protocol of Section 4 — their registers hold
  ``pref``-states that flip exactly like Figure 1's register — until
  either they agree (decide) or the laggard catches up (resume).
* Terminating rules:

  - **T1** — a processor reading ``dec-v`` moves to ``dec-v``
    (decisions are register values; deciding *is* writing ``dec-v``).
  - **T2** — a run-mode processor seeing both others ≥ 2 positions
    behind decides its own value (the bounded analog of the unbounded
    protocol's lead-by-two rule).
  - **T3** — each register carries a third field ``seen`` recording
    whether the owner held only a, only b, or both during the last
    completed window section; if all three registers show ``seen = v``
    *and all three currently hold value v* the reader decides v.  (The
    italicized strengthening is ours: the extended abstract's T3 is
    stated loosely, and the weaker reading admits stale-section races;
    see DESIGN.md §5 item 5.)
  - **A2** — a waiting leader whose fellow leader shows the same value
    (pref- or run-state) while the laggard is still ≥ 2 behind decides
    that value; this is Figure 1's "read equal, decide" rule.

* The re-read rule: a phase reads both other registers and then
  re-reads the one that is *ahead*, so the more advanced processor's
  value is the freshest ("the protocol works only if the value of the
  processor ahead is read last").

Safety is not taken on faith: the test suite model-checks this
implementation exhaustively over all schedules and coin outcomes to a
bounded depth and validates every Monte-Carlo trace, which is how the
interpretation choices above were settled.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.errors import ProtocolError
from repro.sim.ops import Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


class _Mixed:
    """Sentinel for a section in which both values were held ("c")."""

    _instance = None

    def __new__(cls) -> "_Mixed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "mixed"

    def __reduce__(self):
        return (_Mixed, ())


#: Third-field value meaning "held both values within the section".
MIXED = _Mixed()

#: The circular position ring and its checkpoints (window right-ends).
POSITIONS = tuple(range(1, 10))
CHECKPOINTS = (3, 6, 9)


def ahead(x: int, y: int) -> int:
    """Signed circular distance: how far position x is ahead of y.

    Well-defined (range −4..4) because the protocol maintains all
    registers within one width-5 window.
    """
    return ((x - y + 4) % 9) - 4


def advance(pos: int) -> int:
    """The circular successor of a position (9 wraps to 1)."""
    return pos % 9 + 1


@dataclasses.dataclass(frozen=True)
class BReg:
    """One register value: [number-field, value-field, third-field].

    ``mode``:
        "run"  — the A3-style state [pos, val];
        "wait" — the embedded two-processor state [pos, pref-val]
                 (``pos`` is then a checkpoint);
        "dec"  — decided [dec-val].
    ``val``:
        the held/preferred/decided value; ``None`` only in the initial
        (never-written) register content.
    ``seen``:
        the T3 third field — ``None`` (no completed section), a value
        (held only it), or :data:`MIXED`.
    """

    mode: str = "run"
    pos: int = 1
    val: Hashable = None
    seen: Hashable = None

    @property
    def pref(self) -> Hashable:
        """Alias letting generic adversaries read the value field."""
        return self.val

    def __repr__(self) -> str:
        if self.mode == "dec":
            return f"[dec-{self.val!r}]"
        if self.mode == "wait":
            return f"[{self.pos},pref-{self.val!r}]"
        return f"[{self.pos},{self.val!r},{self.seen!r}]"


#: Register content before the owner's initial write.
INITIAL = BReg(mode="run", pos=1, val=None, seen=None)


@dataclasses.dataclass(frozen=True)
class TBState:
    """Processor state: phase program counter plus phase-local reads.

    ``recent`` is the owner's window memory — the set of (position,
    value) pairs it has held within circular distance 4 of its current
    position; it is what the T3 ``seen`` summary is computed from when
    a checkpoint is crossed.
    """

    pc: str  # init | read1 | read2 | reread | write | decwrite | done
    reg: BReg
    recent: FrozenSet[Tuple[int, Hashable]] = frozenset()
    r_first: Optional[BReg] = None
    r_second: Optional[BReg] = None
    cand: Optional[BReg] = None
    dec_pending: Optional[Hashable] = None
    output: Optional[Hashable] = None


class ThreeBoundedProtocol(ConsensusProtocol):
    """Section 6's coordination protocol with bounded registers.

    Parameters
    ----------
    values:
        The binary input domain (exactly two values, as in the paper).
    p_heads:
        Install-probability of the per-phase coin (ablation knob).
    """

    n_processes = 3

    def __init__(self, values: Sequence[Hashable] = ("a", "b"),
                 p_heads: float = 0.5) -> None:
        super().__init__(values)
        if len(self.values) != 2:
            raise ValueError(
                "the bounded protocol is binary; compose with "
                "MultiValuedProtocol for larger domains"
            )
        if not 0.0 < p_heads < 1.0:
            raise ValueError("p_heads must be in (0, 1)")
        self._p_heads = p_heads

    def registers(self) -> Tuple[RegisterSpec, ...]:
        return tuple(
            RegisterSpec(
                name=f"r{i}",
                writers=(i,),
                readers=tuple(j for j in range(3) if j != i),
                initial=INITIAL,
            )
            for i in range(3)
        )

    def _others(self, pid: int) -> Tuple[int, int]:
        a, b = [j for j in range(3) if j != pid]
        return a, b

    # ------------------------------------------------------------------
    # Phase computation (pure; the heart of the protocol)
    # ------------------------------------------------------------------

    def _window_summary(self, recent: FrozenSet[Tuple[int, Hashable]]) -> Hashable:
        """T3 third-field value for the section being exited."""
        vals = {v for (_p, v) in recent}
        if len(vals) == 1:
            return next(iter(vals))
        return MIXED

    def _leader_value(self, own: BReg, others: Sequence[BReg]) -> Hashable:
        """Figure 3's conditions c1/c2: the value the next state carries.

        Verbatim from the paper (stated for the [m,a] family; the [m,b]
        family exchanges a and b):

        * c1 — one of the leading processors has [-,pref-a] or [-,a]
          and no leading processor has [-,pref-b]  →  carry a;
        * c2 — one of the leading processors has [-,pref-b], or all the
          leading processors have value [-,b]  →  carry b.

        The asymmetry matters: a *pref* state (a leader parked at a
        checkpoint running the embedded two-processor protocol)
        dominates run-mode values, so a processor catching up to
        waiting leaders aligns itself with the waiters' side instead of
        dragging its own value past them — which is what keeps a
        catcher-up from racing to a conflicting lead-of-two decision.
        """
        v = own.val
        w = self._other_value(v)
        regs = [own] + [o for o in others if o.mode != "dec"]
        lead = [
            r for r in regs
            if all(ahead(s.pos, r.pos) <= 0 for s in regs)
        ]
        lead_prefs = {r.val for r in lead if r.mode == "wait"}
        lead_vals = {r.val for r in lead}
        # c2 first clause: a leading pref-w wins outright (and also
        # falsifies c1's "no leading pref-w" conjunct).
        if w in lead_prefs:
            return w
        # c1: own value present among the leaders in any form.
        if v in lead_vals:
            return v
        # c2 second clause: all leaders carry w.
        if lead_vals == {w}:
            return w
        return v

    def _other_value(self, v: Hashable) -> Hashable:
        a, b = self.values
        return b if v == a else a

    def _compute(self, own: BReg, recent: FrozenSet[Tuple[int, Hashable]],
                 others: Sequence[BReg]) -> Tuple[str, Hashable]:
        """End-of-reads transition: ("dec", value) or ("cand", BReg)."""
        # T1 — adopt any visible decision.
        for o in others:
            if o.mode == "dec":
                return ("dec", o.val)

        gaps = [ahead(own.pos, o.pos) for o in others]

        if own.mode == "wait":
            return self._compute_wait(own, others, gaps)

        # T2 — both others at least two steps behind.
        if all(g >= 2 for g in gaps):
            return ("dec", own.val)

        # T3 — unanimous clean sections *and* unanimous current values.
        seens = {own.seen} | {o.seen for o in others}
        vals = {own.val} | {o.val for o in others}
        if (len(seens) == 1 and len(vals) == 1):
            s = next(iter(seens))
            v = next(iter(vals))
            if s is not None and s is not MIXED and s == v:
                return ("dec", v)

        new_val = self._leader_value(own, others)

        if own.pos in CHECKPOINTS:
            i_am_leading = all(ahead(o.pos, own.pos) <= 0 for o in others)
            laggard_far = any(g >= 2 for g in gaps)
            # Checkpoint gate: a leader may not leave a checkpoint while
            # the laggard is two or more behind — it waits in the
            # embedded two-processor protocol instead.
            if i_am_leading and laggard_far:
                return ("cand", BReg(mode="wait", pos=own.pos,
                                     val=new_val, seen=own.seen))
            # Crossing past visible waiters: a waiter parked at this
            # checkpoint may already hold a pending agreement decision,
            # so a catcher-up may carry only the value the others
            # unanimously show; on a mixed view it holds its position
            # until the embedded protocol resolves (a dec appears, the
            # waiters exit, or their values align).
            if any(o.mode == "wait" for o in others):
                shown = {o.val for o in others}
                if len(shown) != 1:
                    return ("cand", own)  # hold (rewrite old value)
                new_val = next(iter(shown))

        # Ordinary advance (crossing a checkpoint updates the third field).
        new_pos = advance(own.pos)
        if own.pos in CHECKPOINTS:
            new_seen = self._window_summary(recent)
        else:
            new_seen = own.seen
        return ("cand", BReg(mode="run", pos=new_pos, val=new_val,
                             seen=new_seen))

    def _compute_wait(self, own: BReg, others: Sequence[BReg],
                      gaps: Sequence[int]) -> Tuple[str, Hashable]:
        """Wait-mode phase: the embedded two-processor protocol."""
        c = own.pos
        # Everyone within one step again: resume the main protocol.
        if all(g <= 1 for g in gaps):
            return ("cand", BReg(mode="run", pos=c, val=own.val,
                                 seen=own.seen))
        # Identify the fellow leader (within one of the checkpoint) and
        # the laggard (two or more behind).
        fellow = None
        for o, g in zip(others, gaps):
            if g <= 1:
                fellow = o
        if fellow is None:
            # Both others far behind; hold position (T2 does not apply
            # in wait mode — we are no longer in a [-,v] run state).
            return ("cand", own)
        # Figure 1's rule: equal values decide...
        if fellow.val == own.val and fellow.val is not None:
            return ("dec", own.val)
        # ...different values flip: adopt the fellow's value (the coin's
        # retain-half plays the role of "rewrite own value").
        adopted = fellow.val if fellow.val is not None else own.val
        return ("cand", BReg(mode="wait", pos=c, val=adopted,
                             seen=own.seen))

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    def initial_state(self, pid: int, input_value: Hashable) -> TBState:
        self.check_input(input_value)
        reg = BReg(mode="run", pos=1, val=input_value, seen=None)
        return TBState(pc="init", reg=reg,
                       recent=frozenset({(1, input_value)}))

    def branches(self, pid: int, state: TBState) -> Sequence[Branch]:
        own_reg = f"r{pid}"
        o1, o2 = self._others(pid)
        if state.pc == "init":
            return deterministic(WriteOp(own_reg, state.reg))
        if state.pc == "read1":
            return deterministic(ReadOp(f"r{o1}"))
        if state.pc == "read2":
            return deterministic(ReadOp(f"r{o2}"))
        if state.pc == "reread":
            return deterministic(ReadOp(f"r{o1}"))
        if state.pc == "decwrite":
            return deterministic(
                WriteOp(own_reg, BReg(mode="dec", pos=0,
                                      val=state.dec_pending, seen=None))
            )
        if state.pc == "write":
            return (
                Branch(self._p_heads, WriteOp(own_reg, state.cand)),
                Branch(1.0 - self._p_heads, WriteOp(own_reg, state.reg)),
            )
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def _finish_reads(self, state: TBState, first: BReg,
                      second: BReg) -> TBState:
        kind, payload = self._compute(state.reg, state.recent,
                                      (first, second))
        if kind == "dec":
            return dataclasses.replace(
                state, pc="decwrite", r_first=first, r_second=second,
                dec_pending=payload,
            )
        return dataclasses.replace(
            state, pc="write", r_first=first, r_second=second, cand=payload,
        )

    def observe(self, pid: int, state: TBState, op: Op,
                result: Hashable) -> TBState:
        if state.pc == "init":
            return dataclasses.replace(state, pc="read1")
        if state.pc == "read1":
            return dataclasses.replace(state, pc="read2", r_first=result)
        if state.pc == "read2":
            first, second = state.r_first, result
            # Re-read rule: the processor ahead must be read last.  If
            # the first-read register is ahead of the second, read it
            # again (decided registers never need a re-read: T1 wins).
            if (first.mode != "dec" and second.mode != "dec"
                    and ahead(first.pos, second.pos) > 0):
                return dataclasses.replace(
                    state, pc="reread", r_second=second
                )
            return self._finish_reads(state, first, second)
        if state.pc == "reread":
            return self._finish_reads(state, result, state.r_second)
        if state.pc == "decwrite":
            return dataclasses.replace(
                state, pc="done", reg=op.value, output=state.dec_pending
            )
        if state.pc == "write":
            assert isinstance(op, WriteOp)
            written: BReg = op.value
            if written == state.reg:
                # Tails: the old value was rewritten; nothing changes.
                return dataclasses.replace(state, pc="read1")
            recent = {
                (p, v) for (p, v) in state.recent
                if 0 <= ahead(written.pos, p) <= 4
            }
            recent.add((written.pos, written.val))
            return dataclasses.replace(
                state, pc="read1", reg=written, recent=frozenset(recent)
            )
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: TBState) -> Optional[Hashable]:
        return state.output

    def describe_state(self, pid: int, state: TBState) -> str:
        if state.pc == "done":
            return f"P{pid}: decided {state.output!r}"
        return f"P{pid}: pc={state.pc} reg={state.reg!r}"

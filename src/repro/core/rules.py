"""Shared decision rules of the pref/num protocol family (Figure 2).

Both the three-processor unbounded protocol (Section 5) and its
n-processor generalization drive each phase through the same three
questions, asked about the multiset of register values the processor
just read (its own register included):

1. *Is a decision possible?*  Yes when all prefs agree, or when the
   leading processors (maximal ``num``) agree among themselves and
   every other processor trails by at least two.
2. *What would my next register value be?*  Adopt the leaders' pref if
   they are unanimous (else keep mine) and increment my ``num``.
3. *Do I actually install it?*  Only with probability 1/2 — the other
   half of the time the old value is rewritten.  (That coin lives in the
   protocol's ``branches``, not here.)

Keeping the rules in one place makes the n-process protocol a
three-line specialization and gives the tests a single target for
property checks.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.sim.ops import BOTTOM


@dataclasses.dataclass(frozen=True)
class PrefNum:
    """Content of one communication register: a pref and a num field.

    ``pref`` is ⊥ until the owner's initial write; ``num`` starts at 0
    and grows without bound (with exponentially vanishing probability,
    Theorem 9).
    """

    pref: Hashable = BOTTOM
    num: int = 0

    def __repr__(self) -> str:
        return f"[{self.pref!r},{self.num}]"


#: The register value before the owner's initial write.
INITIAL = PrefNum(pref=BOTTOM, num=0)


def max_num(regs: Sequence[PrefNum]) -> int:
    """The maximal num field over a collection of register values."""
    return max(reg.num for reg in regs)


def leading(regs: Sequence[PrefNum]) -> Tuple[PrefNum, ...]:
    """The register values of the leading processor(s)."""
    top = max_num(regs)
    return tuple(reg for reg in regs if reg.num == top)


def unanimous_pref(regs: Sequence[PrefNum]) -> Optional[Hashable]:
    """The common pref of ``regs`` if they agree (⊥ counts as a value)."""
    prefs = {reg.pref for reg in regs}
    if len(prefs) == 1:
        return next(iter(prefs))
    return None


def decision(own: PrefNum, others: Sequence[PrefNum]) -> Optional[Hashable]:
    """The decision test; returns the decided value or ``None``.

    Case A: the pref of *all* registers is the same.  (The caller's own
    pref is never ⊥ after its initial write, so a unanimous pref is a
    real input value.)

    Case B: the caller is itself among the leading processors, the
    leading prefs agree, and every non-leading register's num is
    < maxnum − 1 (i.e. trails by ≥ 2).

    The own-leadership requirement in case B is a deliberate deviation
    from the most literal reading of the extended abstract's Figure 2,
    which lets any processor decide upon *observing* unanimous leaders
    two ahead.  That literal rule is inconsistent: a phase's reads
    happen one register at a time, so a trailing processor can decide
    for a leader using a stale view of the other laggard while that
    laggard races to a two-lead of its own with the opposite pref —
    our model checker and Monte-Carlo harness both produce the
    violating schedule (see EXPERIMENTS.md, finding F1).  Requiring the
    decider to be two ahead of everything it saw restores the standard
    Chor-Israeli-Li argument (this is also how the protocol is stated
    in the journal version and in later surveys), and trailing
    processors still terminate: they adopt the frozen winner's pref
    while catching up and decide through case A.
    """
    regs = (own,) + tuple(others)
    common = unanimous_pref(regs)
    if common is not None and common is not BOTTOM:
        return common

    top = max_num(regs)
    if own.num == top:
        lead = [reg for reg in regs if reg.num == top]
        rest = [reg for reg in regs if reg.num != top]
        lead_pref = unanimous_pref(lead)
        if lead_pref is not None and lead_pref is not BOTTOM:
            if all(reg.num < top - 1 for reg in rest):
                return lead_pref
    return None


def decision_literal_figure2(own: PrefNum,
                             others: Sequence[PrefNum]) -> Optional[Hashable]:
    """The *literal* Figure 2 decision rule — kept because it is broken.

    This is the extended abstract's wording taken at face value: decide
    whenever the observed leaders agree and everyone else trails by two,
    whether or not the observer is itself leading.  Reproduction finding
    F1 (see EXPERIMENTS.md): this rule violates consistency — a phase's
    reads are not an atomic snapshot, so a trailing processor can decide
    for the leaders off a stale view of the other laggard while that
    laggard races to an opposite-pref lead of its own.  The library's
    protocols use :func:`decision`; this variant exists so the test
    suite and benchmark E3 can regenerate the violating schedule.
    """
    regs = (own,) + tuple(others)
    common = unanimous_pref(regs)
    if common is not None and common is not BOTTOM:
        return common

    top = max_num(regs)
    lead = [reg for reg in regs if reg.num == top]
    rest = [reg for reg in regs if reg.num != top]
    lead_pref = unanimous_pref(lead)
    if lead_pref is not None and lead_pref is not BOTTOM:
        if all(reg.num < top - 1 for reg in rest):
            return lead_pref
    return None


def candidate(own: PrefNum, others: Sequence[PrefNum]) -> PrefNum:
    """Figure 2's heads-path new register value.

    If all leading processors share a pref, adopt it; otherwise keep
    one's own pref.  Either way, advance num by one.
    """
    regs = (own,) + tuple(others)
    lead_pref = unanimous_pref(leading(regs))
    if lead_pref is not None and lead_pref is not BOTTOM:
        new_pref = lead_pref
    else:
        new_pref = own.pref
    return PrefNum(pref=new_pref, num=own.num + 1)

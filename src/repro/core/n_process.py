"""The n-processor generalization of the Figure 2 protocol.

The PODC extended abstract develops the two- and three-processor
protocols and defers the n-processor generalization to the full paper
("In the full paper we will generalize these last two protocols to n
processor protocols").  This module implements the natural
generalization of the unbounded pref/num protocol:

* every processor owns one 1-writer (n−1)-reader register holding a
  ``[pref, num]`` record;
* a phase reads all n−1 other registers, applies exactly the same
  decision and candidate rules as the three-processor protocol
  (:mod:`repro.core.rules` — they are already arity-independent), and
  flips the same install/retain coin.

The abstract's headline claim is that coordination is achievable for
systems of arbitrary size n with expected run time polynomial in n and
tolerance of up to n−1 fail-stop crashes; benchmarks E7 and E8 measure
both on this implementation, and the checker validates consistency
exhaustively for small n and empirically for larger n.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.core.rules import INITIAL, PrefNum, candidate, decision
from repro.errors import ProtocolError
from repro.sim.ops import BOTTOM, Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


@dataclasses.dataclass(frozen=True)
class NPState:
    """Processor state: phase program counter plus the reads collected.

    ``pc`` is "init", "read" (with ``read_idx`` counting through the
    other processors), "write", or "done".
    """

    pc: str
    reg: PrefNum
    read_idx: int = 0
    reads: Tuple[PrefNum, ...] = ()
    oldreg: PrefNum = INITIAL
    cand: Optional[PrefNum] = None
    output: Optional[Hashable] = None


class NProcessProtocol(ConsensusProtocol):
    """Unbounded-register randomized coordination for any n ≥ 2.

    Parameters
    ----------
    n:
        System size (n ≥ 2).
    values:
        Input domain; defaults to binary ("a", "b").
    p_heads:
        Install-probability of the per-phase coin (ablation knob).
    """

    def __init__(
        self,
        n: int,
        values: Optional[Sequence[Hashable]] = ("a", "b"),
        p_heads: float = 0.5,
    ) -> None:
        super().__init__(values)
        if n < 2:
            raise ValueError("need at least two processors")
        if not 0.0 < p_heads < 1.0:
            raise ValueError("p_heads must be in (0, 1)")
        self.n_processes = n
        self._p_heads = p_heads

    def registers(self) -> Tuple[RegisterSpec, ...]:
        n = self.n_processes
        return tuple(
            RegisterSpec(
                name=f"r{i}",
                writers=(i,),
                readers=tuple(j for j in range(n) if j != i),
                initial=INITIAL,
            )
            for i in range(n)
        )

    def _others(self, pid: int) -> Tuple[int, ...]:
        return tuple(j for j in range(self.n_processes) if j != pid)

    def initial_state(self, pid: int, input_value: Hashable) -> NPState:
        self.check_input(input_value)
        if input_value is BOTTOM:
            raise ValueError("⊥ is not a legal input value")
        return NPState(pc="init", reg=PrefNum(pref=input_value, num=1))

    def branches(self, pid: int, state: NPState) -> Sequence[Branch]:
        own_reg = f"r{pid}"
        if state.pc == "init":
            return deterministic(WriteOp(own_reg, state.reg))
        if state.pc == "read":
            target = self._others(pid)[state.read_idx]
            return deterministic(ReadOp(f"r{target}"))
        if state.pc == "write":
            return (
                Branch(self._p_heads, WriteOp(own_reg, state.cand)),
                Branch(1.0 - self._p_heads, WriteOp(own_reg, state.oldreg)),
            )
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def observe(self, pid: int, state: NPState, op: Op,
                result: Hashable) -> NPState:
        if state.pc == "init":
            return dataclasses.replace(state, pc="read", read_idx=0, reads=())
        if state.pc == "read":
            reads = state.reads + (result,)
            if len(reads) < self.n_processes - 1:
                return dataclasses.replace(
                    state, reads=reads, read_idx=state.read_idx + 1
                )
            # Phase's reads complete: decide or compute the candidate.
            own = state.reg
            decided = decision(own, reads)
            if decided is not None:
                return dataclasses.replace(
                    state, pc="done", reads=reads, output=decided
                )
            return dataclasses.replace(
                state,
                pc="write",
                reads=reads,
                oldreg=own,
                cand=candidate(own, reads),
            )
        if state.pc == "write":
            assert isinstance(op, WriteOp)
            return dataclasses.replace(
                state, pc="read", read_idx=0, reads=(), reg=op.value
            )
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: NPState) -> Optional[Hashable]:
        return state.output

    def describe_state(self, pid: int, state: NPState) -> str:
        if state.pc == "done":
            return f"P{pid}: decided {state.output!r}"
        return f"P{pid}: pc={state.pc} reg={state.reg!r} reads={len(state.reads)}"

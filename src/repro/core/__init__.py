"""The paper's protocols: randomized coordination with atomic registers.

* :mod:`repro.core.two_process` — the two-processor protocol (Figure 1):
  one single-reader single-writer register per processor, expected 10
  steps to decide.
* :mod:`repro.core.three_unbounded` — the three-processor protocol with
  unbounded ``num`` fields (Figure 2).
* :mod:`repro.core.three_bounded` — the bounded-register three-processor
  protocol (Section 6, Figure 3).
* :mod:`repro.core.n_process` — generalization of the Figure 2 protocol
  to arbitrary n (deferred by the extended abstract to the full paper).
* :mod:`repro.core.multivalued` — Theorem 5's reduction from k-valued to
  binary coordination.
* :mod:`repro.core.naive` — the broken "flip until unanimous" protocol
  Section 5 warns about; kept as a baseline for benchmark E4.
* :mod:`repro.core.deterministic` — deterministic protocols fed to the
  impossibility checker (Section 3).
* :mod:`repro.core.consensus` — the high-level convenience API.
"""

from repro.core.protocol import ConsensusProtocol
from repro.core.two_process import TwoProcessProtocol
from repro.core.three_unbounded import ThreeUnboundedProtocol, PrefNum
from repro.core.three_bounded import ThreeBoundedProtocol
from repro.core.n_process import NProcessProtocol
from repro.core.multivalued import MultiValuedProtocol
from repro.core.naive import NaiveProtocol
from repro.core.consensus import ConsensusOutcome, solve

__all__ = [
    "ConsensusProtocol",
    "TwoProcessProtocol",
    "ThreeUnboundedProtocol",
    "PrefNum",
    "ThreeBoundedProtocol",
    "NProcessProtocol",
    "MultiValuedProtocol",
    "NaiveProtocol",
    "ConsensusOutcome",
    "solve",
]

"""Deterministic coordination attempts — Theorem 4's victims.

Section 3 proves that *no* deterministic protocol solves coordination,
even for two processors: every consistent, nontrivial deterministic
protocol has an infinite schedule on which nobody ever decides.  One
cannot "reproduce" a universally quantified impossibility by running
code, but one can mechanize its proof on concrete instances: the
checker in :mod:`repro.checker.flp` takes any deterministic protocol
from this module and either

* exhibits a run violating consistency or nontriviality, or
* constructs the Lemma 2 bivalent initial configuration and extends it
  per Lemma 3 into an explicit non-deciding schedule (a lasso: a path
  into a cycle of bivalent configurations).

The protocols here are natural deterministic attempts at the problem,
each in the shape of Figure 1 with the coin flip replaced by a
deterministic rule: after writing its preference and reading the other
processor's register, a processor either decides or deterministically
rewrites a new preference.  Benchmark E1 runs the checker over the
whole zoo.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.errors import ProtocolError
from repro.sim.ops import BOTTOM, Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


#: rule(pid, my_pref, value_read) -> ("decide", v) | ("write", new_pref)
Rule = Callable[[int, Hashable, Hashable], Tuple[str, Hashable]]


@dataclasses.dataclass(frozen=True)
class DetState:
    """State of a Figure 1-shaped deterministic protocol."""

    pc: str  # "init" | "read" | "write" | "done"
    pref: Hashable
    last_read: Hashable = BOTTOM
    output: Optional[Hashable] = None


class TwoProcessDeterministic(ConsensusProtocol):
    """A deterministic two-processor protocol in the Figure 1 shape.

    Each processor writes its preference, reads the other register, and
    applies ``rule``; ``rule`` may be asymmetric in ``pid`` (the
    impossibility result does not assume symmetry).
    """

    n_processes = 2

    def __init__(self, rule: Rule, label: str,
                 values: Sequence[Hashable] = ("a", "b")) -> None:
        super().__init__(values)
        self._rule = rule
        self._label = label

    @property
    def name(self) -> str:
        return f"Deterministic({self._label})"

    @property
    def is_randomized(self) -> bool:
        return False

    def registers(self) -> Tuple[RegisterSpec, ...]:
        return (
            RegisterSpec(name="r0", writers=(0,), readers=(1,), initial=BOTTOM),
            RegisterSpec(name="r1", writers=(1,), readers=(0,), initial=BOTTOM),
        )

    def initial_state(self, pid: int, input_value: Hashable) -> DetState:
        self.check_input(input_value)
        return DetState(pc="init", pref=input_value)

    def branches(self, pid: int, state: DetState) -> Sequence[Branch]:
        own, other = f"r{pid}", f"r{1 - pid}"
        if state.pc == "init":
            return deterministic(WriteOp(own, state.pref))
        if state.pc == "read":
            return deterministic(ReadOp(other))
        if state.pc == "write":
            action, payload = self._rule(pid, state.pref, state.last_read)
            assert action == "write"
            return deterministic(WriteOp(own, payload))
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def observe(self, pid: int, state: DetState, op: Op,
                result: Hashable) -> DetState:
        if state.pc == "init":
            return dataclasses.replace(state, pc="read")
        if state.pc == "read":
            action, payload = self._rule(pid, state.pref, result)
            if action == "decide":
                return dataclasses.replace(
                    state, pc="done", last_read=result, output=payload
                )
            return dataclasses.replace(state, pc="write", last_read=result)
        if state.pc == "write":
            assert isinstance(op, WriteOp)
            return dataclasses.replace(state, pc="read", pref=op.value)
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: DetState) -> Optional[Hashable]:
        return state.output


# ----------------------------------------------------------------------
# The zoo.  Rules return ("decide", v) only from the read observation;
# when they return ("write", p) the processor's next step writes p.
# ----------------------------------------------------------------------

def _obstinate_rule(pid: int, pref: Hashable, read: Hashable):
    """Never budge: decide only on agreement, otherwise keep own pref.

    Fails termination: with different inputs and a fair lock-step
    schedule both processors re-read forever (after the initial writes,
    neither register ever changes, so neither condition is met).
    """
    if read is BOTTOM or read == pref:
        return ("decide", pref)
    return ("write", pref)


def _mirror_rule(pid: int, pref: Hashable, read: Hashable):
    """Always adopt the other's value on disagreement.

    Fails termination: a lock-step schedule makes the processors swap
    preferences forever, a perfectly synchronized dance that never
    reaches agreement.
    """
    if read is BOTTOM or read == pref:
        return ("decide", pref)
    return ("write", read)


def _priority_rule(pid: int, pref: Hashable, read: Hashable):
    """Asymmetric: P0 stands firm, P1 yields.

    The textbook "fix" for the mirror protocol, and it is consistent
    (the impossibility result does not require symmetry, and indeed the
    asymmetry is no way out).  It fails *termination*: starving P1
    after its initial write leaves P0 re-reading the stale disagreeing
    value forever.  The checker exhibits that schedule.
    """
    if read is BOTTOM or read == pref:
        return ("decide", pref)
    if pid == 0:
        return ("write", pref)
    return ("write", read)


def _greedy_min_rule(pid: int, pref: Hashable, read: Hashable):
    """Symmetric tie-break: on disagreement both adopt the smaller value.

    Looks safe, and is: disagreeing processors deterministically
    converge on the smaller value, and the write-before-read structure
    closes the ⊥-race one might suspect.  What fails — as Theorem 4
    insists something must — is *termination*: freeze the larger-valued
    processor after its initial write and the other one re-reads the
    frozen disagreement forever (its own value is already the minimum,
    so its rewrites change nothing).  The checker exhibits that lasso.
    """
    if read is BOTTOM or read == pref:
        return ("decide", pref)
    return ("write", min(pref, read))


def obstinate() -> TwoProcessDeterministic:
    """Both processors keep their preference forever."""
    return TwoProcessDeterministic(_obstinate_rule, "obstinate")


def mirror() -> TwoProcessDeterministic:
    """Both processors adopt the other's preference."""
    return TwoProcessDeterministic(_mirror_rule, "mirror")


def priority() -> TwoProcessDeterministic:
    """P0 keeps its preference; P1 adopts P0's."""
    return TwoProcessDeterministic(_priority_rule, "priority")


def greedy_min() -> TwoProcessDeterministic:
    """On disagreement, both adopt the lexicographically smaller value."""
    return TwoProcessDeterministic(_greedy_min_rule, "greedy-min")


def zoo() -> Tuple[TwoProcessDeterministic, ...]:
    """Every deterministic attempt, for sweeping in tests and benches."""
    return (obstinate(), mirror(), priority(), greedy_min())

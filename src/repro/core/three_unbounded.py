"""The three-processor unbounded-register protocol (Section 5, Figure 2).

Each processor P_i keeps a ``[pref, num]`` record in its communication
register.  A phase is: remember the old register value, read the other
two registers, test Figure 2's decision condition, and otherwise toss a
fair coin — heads installs the newly computed value (leader-adopted pref,
num+1), tails rewrites the old value.

The paper proves:

* **Theorem 8 (consistency)** — stated without proof in the extended
  abstract; verified here exhaustively by the model checker (test suite)
  and on every Monte-Carlo trace.
* **Theorem 9** — P(num = k in any register) ≤ (3/4)^k: each time a
  processor takes the lead, the others agree with it with probability
  ≥ 1/4 per phase-pair.  Benchmark E3 measures the empirical num-field
  distribution against this geometric envelope.
* **Corollary** — constant expected running time.

Two register layouts are provided:

* ``"mrsw"`` (default, as in Figure 2): one 1-writer 2-reader register
  per processor.
* ``"srsw"``: the full-paper refinement using only 1-writer 1-reader
  registers — the writer keeps one copy per reader and writes both, one
  step at a time.  This doubles the writes per phase and briefly exposes
  the two copies as mutually inconsistent, which is exactly the
  difficulty the full paper's proof addresses; our checker validates the
  variant empirically.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.core.rules import INITIAL, PrefNum, candidate, decision
from repro.errors import ProtocolError
from repro.sim.ops import BOTTOM, Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


@dataclasses.dataclass(frozen=True)
class TUState:
    """Processor state of the three-processor protocol.

    ``pc`` walks the phase: ``init`` (initial write; ``init2`` for the
    second copy under the srsw layout) → ``read1`` → ``read2`` →
    ``write`` (coin-directed; ``write2`` for the second copy) → back to
    ``read1``, or ``done``.

    ``reg`` mirrors the processor's own register (its ``newreg``);
    ``oldreg`` is the previous phase's value; ``cand`` is the computed
    heads-path value; ``read_a``/``read_b`` hold the two values read
    this phase.
    """

    pc: str
    reg: PrefNum
    oldreg: PrefNum = INITIAL
    cand: Optional[PrefNum] = None
    read_a: Optional[PrefNum] = None
    read_b: Optional[PrefNum] = None
    output: Optional[Hashable] = None


class ThreeUnboundedProtocol(ConsensusProtocol):
    """Figure 2's randomized coordination protocol for three processors.

    Parameters
    ----------
    values:
        Input domain (default ("a", "b") as in the paper's exposition;
        the protocol itself works for any domain — multivaluedness is
        also obtainable via Theorem 5's reduction).
    layout:
        "mrsw" for 1-writer 2-reader registers (Figure 2) or "srsw"
        for the full-paper 1-writer 1-reader variant.
    p_heads:
        Coin bias (ablation); Figure 2 uses a fair coin.  Heads installs
        the new value, tails retains the old.
    """

    n_processes = 3

    def __init__(
        self,
        values: Optional[Sequence[Hashable]] = ("a", "b"),
        layout: str = "mrsw",
        p_heads: float = 0.5,
        decision_rule: str = "own-leader",
    ) -> None:
        super().__init__(values)
        if layout not in ("mrsw", "srsw"):
            raise ValueError(f"unknown layout {layout!r}")
        if not 0.0 < p_heads < 1.0:
            raise ValueError("p_heads must be in (0, 1)")
        if decision_rule not in ("own-leader", "literal"):
            raise ValueError(f"unknown decision rule {decision_rule!r}")
        self._layout = layout
        self._p_heads = p_heads
        # "own-leader" is the corrected rule (the library default);
        # "literal" is the extended abstract's broken wording, kept so
        # finding F1's consistency violation can be regenerated.
        from repro.core.rules import decision_literal_figure2

        self._decision = (
            decision if decision_rule == "own-leader"
            else decision_literal_figure2
        )
        self._decision_rule = decision_rule

    @property
    def decision_rule(self) -> str:
        return self._decision_rule

    # ------------------------------------------------------------------
    # Register wiring
    # ------------------------------------------------------------------

    def registers(self) -> Tuple[RegisterSpec, ...]:
        if self._layout == "mrsw":
            return tuple(
                RegisterSpec(
                    name=f"r{i}",
                    writers=(i,),
                    readers=tuple(j for j in range(3) if j != i),
                    initial=INITIAL,
                )
                for i in range(3)
            )
        # srsw: r{i}to{j} is P_i's copy dedicated to reader P_j.
        specs = []
        for i in range(3):
            for j in range(3):
                if i == j:
                    continue
                specs.append(
                    RegisterSpec(
                        name=f"r{i}to{j}",
                        writers=(i,),
                        readers=(j,),
                        initial=INITIAL,
                    )
                )
        return tuple(specs)

    def _others(self, pid: int) -> Tuple[int, int]:
        a, b = [j for j in range(3) if j != pid]
        return a, b

    def _read_target(self, pid: int, other: int) -> str:
        if self._layout == "mrsw":
            return f"r{other}"
        return f"r{other}to{pid}"

    def _write_targets(self, pid: int) -> Tuple[str, ...]:
        if self._layout == "mrsw":
            return (f"r{pid}",)
        a, b = self._others(pid)
        return (f"r{pid}to{a}", f"r{pid}to{b}")

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    def initial_state(self, pid: int, input_value: Hashable) -> TUState:
        self.check_input(input_value)
        if input_value is BOTTOM:
            raise ValueError("⊥ is not a legal input value")
        return TUState(pc="init", reg=PrefNum(pref=input_value, num=1))

    def branches(self, pid: int, state: TUState) -> Sequence[Branch]:
        targets = self._write_targets(pid)
        a, b = self._others(pid)
        if state.pc == "init":
            return deterministic(WriteOp(targets[0], state.reg))
        if state.pc == "init2":
            return deterministic(WriteOp(targets[1], state.reg))
        if state.pc == "read1":
            return deterministic(ReadOp(self._read_target(pid, a)))
        if state.pc == "read2":
            return deterministic(ReadOp(self._read_target(pid, b)))
        if state.pc == "write":
            # The coin: heads installs the candidate, tails rewrites the
            # old value (Figure 2's "toss a fair coin").
            return (
                Branch(self._p_heads, WriteOp(targets[0], state.cand)),
                Branch(1.0 - self._p_heads, WriteOp(targets[0], state.oldreg)),
            )
        if state.pc == "write2":
            # Second copy under srsw: repeats the value chosen at write1.
            return deterministic(WriteOp(targets[1], state.reg))
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def observe(self, pid: int, state: TUState, op: Op,
                result: Hashable) -> TUState:
        two_copies = self._layout == "srsw"
        if state.pc == "init":
            next_pc = "init2" if two_copies else "read1"
            return dataclasses.replace(state, pc=next_pc)
        if state.pc == "init2":
            return dataclasses.replace(state, pc="read1")
        if state.pc == "read1":
            return dataclasses.replace(state, pc="read2", read_a=result)
        if state.pc == "read2":
            own = state.reg
            others = (state.read_a, result)
            decided = self._decision(own, others)
            if decided is not None:
                return dataclasses.replace(
                    state, pc="done", read_b=result, output=decided
                )
            return dataclasses.replace(
                state,
                pc="write",
                read_b=result,
                oldreg=own,
                cand=candidate(own, others),
            )
        if state.pc == "write":
            assert isinstance(op, WriteOp)
            next_pc = "write2" if two_copies else "read1"
            return dataclasses.replace(state, pc=next_pc, reg=op.value)
        if state.pc == "write2":
            return dataclasses.replace(state, pc="read1")
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: TUState) -> Optional[Hashable]:
        return state.output

    def describe_state(self, pid: int, state: TUState) -> str:
        if state.pc == "done":
            return f"P{pid}: decided {state.output!r}"
        return f"P{pid}: pc={state.pc} reg={state.reg!r}"

"""Theorem 5: k-valued coordination from binary coordination.

    "Let CP₂ be a coordination protocol for a system with n processors
    with two decision values.  A coordination protocol CP_k for n
    processors with an arbitrary number k of decision values can be
    constructed using CP₂.  The complexity of CP_k is log k times larger
    than the complexity of CP₂."

The construction implemented here agrees bit by bit.  Values are
identified with indices 0..k−1 and encoded in W = ⌈log₂ k⌉ bits.  Each
processor:

1. *announces* its current candidate value in a shared value register,
2. for each bit position j = 0..W−1, runs an embedded binary instance
   of the base protocol, proposing bit j of its candidate,
3. if the decided bit differs from its candidate's bit, *scans* the
   other value registers for a candidate whose bits 0..j match every
   decided bit so far, adopts it, re-announces, and proceeds to the
   next bit.

Why a matching candidate is always visible during a scan: the decided
bit is the proposal of some processor active in that instance
(nontriviality of the base protocol), that processor announced its
candidate *before* taking any step of the instance, and announcements
only ever change to candidates matching strictly longer decided
prefixes.  Hence from the moment bit j is decided, some value register
permanently matches b₀..b_j.

Consistency and nontriviality are inherited: all processors decide the
same bit per instance (base consistency), the final bit string is the
index of some announced candidate (the prefix-adoption invariant), and
announced candidates trace back to inputs of active processors.

The step complexity is W × (base cost) plus O(W·n) announce/scan
steps — the "log k times larger" shape benchmark E6 measures.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.errors import ProtocolError
from repro.sim.ops import BOTTOM, Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


def bit_width(k: int) -> int:
    """⌈log₂ k⌉, the number of binary instances Theorem 5 needs."""
    if k < 2:
        raise ValueError("need at least two values")
    return max(1, (k - 1).bit_length())


@dataclasses.dataclass(frozen=True)
class MVState:
    """Composed state: which round we are in and the embedded base state.

    ``pc``:
        "announce"    — about to publish the candidate value;
        "base"        — running the round's embedded binary instance
                        (``sub`` is the base automaton's state);
        "scan"        — looking for a candidate matching the decided
                        prefix (``scan_idx`` walks the other
                        processors);
        "reannounce"  — about to publish an adopted candidate;
        "done"        — decided.
    ``decided_bits`` are the outcomes of the completed instances.
    """

    pc: str
    round: int
    candidate: Hashable
    decided_bits: Tuple[int, ...] = ()
    sub: Hashable = None
    scan_idx: int = 0
    output: Optional[Hashable] = None


class MultiValuedProtocol(ConsensusProtocol):
    """CP_k built from a binary base protocol per Theorem 5.

    Parameters
    ----------
    base_factory:
        Zero-argument callable returning a *binary* ConsensusProtocol
        with values ``(0, 1)`` for the same number of processors
        (e.g. ``lambda: TwoProcessProtocol(values=(0, 1))`` or
        ``lambda: NProcessProtocol(5, values=(0, 1))``).
    values:
        The k-valued input domain (k ≥ 2, arbitrary hashables).
    """

    def __init__(
        self,
        base_factory: Callable[[], ConsensusProtocol],
        values: Sequence[Hashable],
    ) -> None:
        super().__init__(values)
        self._base = base_factory()
        if self._base.values is None or set(self._base.values) != {0, 1}:
            raise ValueError(
                "base protocol must be binary with values (0, 1); got "
                f"{self._base.values!r}"
            )
        self.n_processes = self._base.n_processes
        self._width = bit_width(len(self.values))
        self._index = {value: i for i, value in enumerate(self.values)}

    @property
    def width(self) -> int:
        """Number of embedded binary instances (⌈log₂ k⌉)."""
        return self._width

    # ------------------------------------------------------------------
    # Bit plumbing
    # ------------------------------------------------------------------

    def _bit(self, value: Hashable, j: int) -> int:
        return (self._index[value] >> j) & 1

    def _matches_prefix(self, value: Hashable, bits: Tuple[int, ...]) -> bool:
        if value is BOTTOM or value not in self._index:
            return False
        return all(self._bit(value, j) == b for j, b in enumerate(bits))

    # ------------------------------------------------------------------
    # Register wiring: W renamed copies of the base layout + value regs
    # ------------------------------------------------------------------

    @staticmethod
    def _instance_prefix(j: int) -> str:
        return f"bin{j}."

    def registers(self) -> Tuple[RegisterSpec, ...]:
        specs = []
        for j in range(self._width):
            prefix = self._instance_prefix(j)
            for spec in self._base.registers():
                specs.append(dataclasses.replace(spec, name=prefix + spec.name))
        n = self.n_processes
        for i in range(n):
            specs.append(
                RegisterSpec(
                    name=f"val{i}",
                    writers=(i,),
                    readers=tuple(x for x in range(n) if x != i),
                    initial=BOTTOM,
                )
            )
        return tuple(specs)

    def _wrap_op(self, op: Op, j: int) -> Op:
        prefix = self._instance_prefix(j)
        if isinstance(op, ReadOp):
            return ReadOp(prefix + op.register)
        return WriteOp(prefix + op.register, op.value)

    def _unwrap_op(self, op: Op, j: int) -> Op:
        prefix = self._instance_prefix(j)
        assert op.register.startswith(prefix)
        bare = op.register[len(prefix):]
        if isinstance(op, ReadOp):
            return ReadOp(bare)
        return WriteOp(bare, op.value)

    def _others(self, pid: int) -> Tuple[int, ...]:
        return tuple(x for x in range(self.n_processes) if x != pid)

    # ------------------------------------------------------------------
    # Automaton interface
    # ------------------------------------------------------------------

    def initial_state(self, pid: int, input_value: Hashable) -> MVState:
        self.check_input(input_value)
        return MVState(pc="announce", round=0, candidate=input_value)

    def branches(self, pid: int, state: MVState) -> Sequence[Branch]:
        if state.pc in ("announce", "reannounce"):
            return deterministic(WriteOp(f"val{pid}", state.candidate))
        if state.pc == "base":
            subs = self._base.branches(pid, state.sub)
            return tuple(
                Branch(b.probability, self._wrap_op(b.op, state.round))
                for b in subs
            )
        if state.pc == "scan":
            target = self._others(pid)[state.scan_idx]
            return deterministic(ReadOp(f"val{target}"))
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def _enter_round(self, pid: int, state: MVState) -> MVState:
        """Start instance ``state.round`` (or finish if all bits decided)."""
        sub = self._base.initial_state(
            pid, self._bit(state.candidate, state.round)
        )
        return dataclasses.replace(state, pc="base", sub=sub)

    def _after_bit(self, pid: int, state: MVState, bit: int) -> MVState:
        """Handle a decided instance: advance, scan, or finish."""
        bits = state.decided_bits + (bit,)
        state = dataclasses.replace(state, decided_bits=bits, sub=None)
        if self._bit(state.candidate, state.round) != bit:
            # Our candidate is dead: find one matching the new prefix.
            return dataclasses.replace(state, pc="scan", scan_idx=0)
        return self._next_round(pid, state)

    def _next_round(self, pid: int, state: MVState) -> MVState:
        nxt = state.round + 1
        if nxt == self._width:
            return dataclasses.replace(
                state, pc="done", round=nxt, output=state.candidate
            )
        return self._enter_round(pid, dataclasses.replace(state, round=nxt))

    def observe(self, pid: int, state: MVState, op: Op,
                result: Hashable) -> MVState:
        if state.pc == "announce":
            return self._enter_round(pid, state)
        if state.pc == "reannounce":
            return self._next_round(pid, state)
        if state.pc == "base":
            bare = self._unwrap_op(op, state.round)
            sub = self._base.observe(pid, state.sub, bare, result)
            decided = self._base.output(pid, sub)
            if decided is None:
                return dataclasses.replace(state, sub=sub)
            return self._after_bit(pid, state, decided)
        if state.pc == "scan":
            if self._matches_prefix(result, state.decided_bits):
                return dataclasses.replace(
                    state, pc="reannounce", candidate=result, scan_idx=0
                )
            # Keep scanning, cycling through the other processors; the
            # matching announcement is already stable (see module doc),
            # so the cycle terminates — usually within one pass.
            nxt = (state.scan_idx + 1) % (self.n_processes - 1)
            return dataclasses.replace(state, scan_idx=nxt)
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: MVState) -> Optional[Hashable]:
        return state.output

    def describe_state(self, pid: int, state: MVState) -> str:
        if state.pc == "done":
            return f"P{pid}: decided {state.output!r}"
        return (
            f"P{pid}: round={state.round} pc={state.pc} "
            f"candidate={state.candidate!r} bits={state.decided_bits}"
        )

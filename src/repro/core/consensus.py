"""High-level convenience API.

Most users of this library want one thing: "run protocol X on inputs Y
under scheduler Z and tell me what happened".  :func:`solve` does that
and packages the answer, with the paper's correctness properties
pre-checked on the resulting run.

For batch experiments use :class:`repro.sim.runner.ExperimentRunner`;
for exhaustive verification use :mod:`repro.checker`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence

from repro.core.protocol import ConsensusProtocol
from repro.sim.kernel import RunResult, Simulation
from repro.sim.rng import ReplayableRng
from repro.sim.trace import Trace


@dataclasses.dataclass(frozen=True)
class ConsensusOutcome:
    """What one consensus run produced.

    ``value`` is the agreed value if all live processors decided the
    same thing; ``None`` if the run was cut off by the step budget
    before everyone decided.
    """

    value: Optional[Hashable]
    decisions: Dict[int, Hashable]
    steps: int
    steps_per_processor: Dict[int, int]
    consistent: bool
    nontrivial: bool
    completed: bool
    trace: Optional[Trace]

    @classmethod
    def from_run(cls, result: RunResult) -> "ConsensusOutcome":
        values = result.decided_values
        agreed = next(iter(values)) if len(values) == 1 and result.all_decided else None
        return cls(
            value=agreed,
            decisions=dict(result.decisions),
            steps=result.total_steps,
            steps_per_processor=dict(result.activations),
            consistent=result.consistent,
            nontrivial=result.nontrivial,
            completed=result.completed,
            trace=result.trace,
        )


def solve(
    protocol: ConsensusProtocol,
    inputs: Sequence[Hashable],
    scheduler=None,
    seed: int = 0,
    max_steps: int = 100_000,
    record_trace: bool = False,
    sinks: Sequence = (),
    fast: Optional[bool] = None,
    memory=None,
    engine: Optional[str] = None,
) -> ConsensusOutcome:
    """Run one consensus instance and return its outcome.

    Parameters
    ----------
    protocol:
        Any coordination protocol from :mod:`repro.core`.
    inputs:
        One input per processor.
    scheduler:
        Defaults to a fair random scheduler seeded from ``seed``.
    seed:
        Root seed; identical calls reproduce identical runs.
    max_steps:
        Step budget; generous by default (the paper's protocols decide
        in expected O(1) phases, so hitting this means trouble worth
        seeing).
    record_trace:
        Keep the full step trace on the outcome.
    sinks:
        Observability sinks (:mod:`repro.obs`) to attach to the run —
        e.g. a :class:`~repro.obs.metrics.MetricsRegistry` or a
        :class:`~repro.obs.journal.JsonlJournal`.
    fast:
        Deprecated boolean alias for ``engine`` (``True`` → ``"fast"``,
        ``False`` → ``"reference"``); passing it warns.
    memory:
        Register semantics: ``None`` (atomic, the default), a name in
        ``("atomic", "regular", "safe")``, or a
        :class:`~repro.sim.memory.MemorySpec` — see docs/MODEL.md.
    engine:
        Execution backend, resolved through the registry
        (:mod:`repro.engines`): ``"fast"`` (default), ``"reference"``,
        or ``"vector"`` (compiled table IR — bit-identical for the
        supported matrix, see docs/IR.md).

    Example
    -------
    >>> from repro.core import TwoProcessProtocol
    >>> outcome = solve(TwoProcessProtocol(), ["a", "b"], seed=7)
    >>> outcome.value in ("a", "b") and outcome.consistent
    True
    """
    from repro.engines import resolve_sim_engine

    engine = resolve_sim_engine(engine, fast, caller="solve").name
    rng = ReplayableRng(seed)
    if scheduler is None:
        from repro.sched.simple import RandomScheduler

        scheduler = RandomScheduler(rng.child("sched"))
    if engine == "vector":
        from repro.ir import VectorKernel, compile_protocol, \
            replay_run, vectorize_scheduler

        vk = VectorKernel(compile_protocol(protocol),
                          vectorize_scheduler(scheduler), memory=memory)
        result, rec = vk.run_single(
            scheduler, rng.child("kernel"), tuple(inputs), max_steps,
            record=bool(sinks), record_trace=record_trace)
        if sinks:
            replay_run(vk.compiled, result, rec, sinks, seed, 0)
        return ConsensusOutcome.from_run(result)
    sim = Simulation(
        protocol,
        inputs,
        scheduler,
        rng.child("kernel"),
        record_trace=record_trace,
        sinks=sinks,
        engine=engine,
        memory=memory,
    )
    # Single-run convention: this run's replay key is (seed, 0), so a
    # span tracer attached here derives the same trace id every call.
    for sink in sinks:
        run_key = getattr(sink, "on_run_key", None)
        if run_key is not None:
            run_key(seed, 0)
    return ConsensusOutcome.from_run(sim.run(max_steps))

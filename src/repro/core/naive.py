"""The broken "Consensus Protocol" of Section 5 — kept as a baseline.

    Each processor chooses at random a value, out of a and b.  When all
    processors have chosen the same value they terminate.

The paper presents this protocol precisely because it *fails* in a
subtle way: an adaptive adversary first lets two processors disagree,
then freezes them and activates only the third forever.  The third
processor can never observe unanimous registers and never terminates,
even though it is activated infinitely often — violating randomized
termination.

Concretely each processor: writes its input; then loops — read the
other registers; if every register (its own included) holds the same
value, decide it; otherwise re-choose its value uniformly at random and
write it.

Benchmark E4 runs this protocol against
:class:`repro.sched.adversary.NaiveKillerAdversary` side by side with
the paper's real three-processor protocol, reproducing the paper's
contrast: the naive victim never decides within any step budget, while
the Figure 2 protocol's victim simply out-races the frozen pair by two
and decides alone.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Optional, Sequence, Tuple

from repro.core.protocol import ConsensusProtocol
from repro.errors import ProtocolError
from repro.sim.ops import BOTTOM, Op, ReadOp, WriteOp
from repro.sim.process import Branch, RegisterSpec, deterministic


@dataclasses.dataclass(frozen=True)
class NaiveState:
    """Processor state: program counter plus the reads of this round."""

    pc: str  # "init" | "read" | "write" | "done"
    value: Hashable
    read_idx: int = 0
    reads: Tuple[Hashable, ...] = ()
    output: Optional[Hashable] = None


class NaiveProtocol(ConsensusProtocol):
    """The Section 5 strawman: flip coins until everyone agrees.

    Binary-valued (the re-choose step samples uniformly from the
    domain), for any n ≥ 2.
    """

    def __init__(self, n: int = 3,
                 values: Sequence[Hashable] = ("a", "b")) -> None:
        super().__init__(values)
        if n < 2:
            raise ValueError("need at least two processors")
        self.n_processes = n

    def registers(self) -> Tuple[RegisterSpec, ...]:
        n = self.n_processes
        return tuple(
            RegisterSpec(
                name=f"r{i}",
                writers=(i,),
                readers=tuple(j for j in range(n) if j != i),
                initial=BOTTOM,
            )
            for i in range(n)
        )

    def _others(self, pid: int) -> Tuple[int, ...]:
        return tuple(j for j in range(self.n_processes) if j != pid)

    def initial_state(self, pid: int, input_value: Hashable) -> NaiveState:
        self.check_input(input_value)
        return NaiveState(pc="init", value=input_value)

    def branches(self, pid: int, state: NaiveState) -> Sequence[Branch]:
        if state.pc == "init":
            return deterministic(WriteOp(f"r{pid}", state.value))
        if state.pc == "read":
            target = self._others(pid)[state.read_idx]
            return deterministic(ReadOp(f"r{target}"))
        if state.pc == "write":
            # Re-choose uniformly from the domain; the adversary cannot
            # see which branch will be taken.
            values = self.values
            p = 1.0 / len(values)
            return tuple(
                Branch(p, WriteOp(f"r{pid}", v)) for v in values
            )
        raise ProtocolError(f"branches() on terminal state {state!r}")

    def observe(self, pid: int, state: NaiveState, op: Op,
                result: Hashable) -> NaiveState:
        if state.pc == "init":
            return dataclasses.replace(state, pc="read", read_idx=0, reads=())
        if state.pc == "read":
            reads = state.reads + (result,)
            if len(reads) < self.n_processes - 1:
                return dataclasses.replace(
                    state, reads=reads, read_idx=state.read_idx + 1
                )
            seen = set(reads) | {state.value}
            if len(seen) == 1 and BOTTOM not in seen:
                return dataclasses.replace(
                    state, pc="done", reads=reads, output=state.value
                )
            return dataclasses.replace(state, pc="write", reads=reads)
        if state.pc == "write":
            assert isinstance(op, WriteOp)
            return dataclasses.replace(
                state, pc="read", read_idx=0, reads=(), value=op.value
            )
        raise ProtocolError(f"observe() on terminal state {state!r}")

    def output(self, pid: int, state: NaiveState) -> Optional[Hashable]:
        return state.output

    def describe_state(self, pid: int, state: NaiveState) -> str:
        if state.pc == "done":
            return f"P{pid}: decided {state.output!r}"
        return f"P{pid}: pc={state.pc} value={state.value!r}"

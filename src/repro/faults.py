"""Deterministic, replayable fault injection for supervised sweeps.

The paper's subject is coordination that survives adversarial
asynchrony; this module turns our *own* infrastructure failures into
the same kind of first-class, schedulable event.  A :class:`FaultPlan`
names exactly which shard attempt of a sweep faults and how — a worker
crash, a raised exception, a hang, a slow shard, a corrupted committed
shard file, or a failed commit — keyed by ``(shard_index, attempt)``
(optionally scoped to one ``spec_hash``).  Because the key is the
attempt coordinate and never the wall clock, replaying the same plan
against the same sweep injects the same faults in the same places,
every time, on any machine.

The determinism-under-faults contract (docs/ROBUSTNESS.md): runs are
pure functions of ``(root_seed, run_index)``, so a supervised sweep
that retries, degrades, or heals its way through *any* injected fault
sequence still merges to final ``RunStats`` / metrics / journal bytes
bit-identical to the fault-free serial run.  The chaos suite
(``tests/test_supervisor_chaos.py``) asserts exactly that.

Worker-side kinds (``crash``/``raise``/``hang``/``slow``) trigger at
shard start inside the worker process via
:func:`trigger_worker_fault`; store-side kinds (``corrupt``/
``commit-fail``) are applied by the supervising parent around the
shard commit.  Nothing here ever fires unless a plan is explicitly
passed to :func:`repro.parallel.supervisor.run_supervised`.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, Optional, Tuple

#: Kinds injected inside the worker process, at shard start.
WORKER_FAULT_KINDS = ("crash", "raise", "hang", "slow")

#: Kinds applied by the supervising parent around the shard commit.
STORE_FAULT_KINDS = ("corrupt", "commit-fail")

FAULT_KINDS = WORKER_FAULT_KINDS + STORE_FAULT_KINDS

#: Corruption modes for ``kind="corrupt"``.
CORRUPT_MODES = ("truncate", "bitflip")


class InjectedFault(RuntimeError):
    """An exception raised by the fault injector (kind ``raise`` /
    ``commit-fail``) — deliberately a plain ``RuntimeError`` subclass so
    the supervisor's fault handling cannot special-case it apart from a
    genuine worker bug."""


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """One injectable fault.

    ``kind``
        ``crash``        — the worker process dies via ``os._exit``
                           (no Python cleanup, like an OOM kill);
        ``raise``        — the worker raises :class:`InjectedFault`;
        ``hang``         — the worker sleeps ``seconds`` before doing
                           any work (trip a ``shard_timeout`` watchdog);
        ``slow``         — like ``hang`` but meant to *finish*: the
                           shard completes after the delay (latency
                           fault, not a failure);
        ``corrupt``      — after the shard commits, its store file is
                           damaged per ``mode`` (at-rest corruption,
                           detected and healed on the next resume);
        ``commit-fail``  — the shard's store commit raises instead of
                           landing (a failed fsync: work done, fact
                           lost — the supervisor must re-execute).
    """

    kind: str
    #: Exit status for ``crash`` (nonzero, like a real kill).
    exitcode: int = 23
    #: Sleep for ``hang``/``slow``.
    seconds: float = 3600.0
    #: Damage style for ``corrupt``.
    mode: str = "truncate"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {FAULT_KINDS})")
        if self.kind == "corrupt" and self.mode not in CORRUPT_MODES:
            raise ValueError(f"unknown corruption mode {self.mode!r} "
                             f"(expected one of {CORRUPT_MODES})")
        if self.kind == "crash" and self.exitcode == 0:
            raise ValueError("crash exitcode must be nonzero (a clean "
                             "exit is not a fault)")
        if self.seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {self.seconds}")


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of faults, keyed ``(shard_index, attempt)``.

    ``entries`` is a sorted tuple of ``((shard, attempt), action)``
    pairs (a frozen, picklable stand-in for a dict — the plan crosses
    the spawn boundary with every shard task).  ``spec_hash`` optionally
    scopes the plan to one sweep: a supervisor running a different spec
    ignores it entirely, so a plan can ride along in shared fixtures
    without leaking faults into unrelated sweeps.

    Attempt numbering is 0-based: ``(k, 0)`` fires on shard ``k``'s
    first execution, ``(k, 1)`` on its first retry, and so on — which
    is what makes escalation scenarios (crash, then hang, then succeed)
    expressible and exactly replayable.
    """

    entries: Tuple[Tuple[Tuple[int, int], FaultAction], ...] = ()
    spec_hash: Optional[str] = None

    @classmethod
    def build(cls, plan: Dict[Tuple[int, int], FaultAction],
              spec_hash: Optional[str] = None) -> "FaultPlan":
        """The ergonomic constructor: a dict keyed ``(shard, attempt)``."""
        for key, action in plan.items():
            shard, attempt = key
            if shard < 0 or attempt < 0:
                raise ValueError(f"fault key {key} must be non-negative")
            if not isinstance(action, FaultAction):
                raise TypeError(f"plan values must be FaultAction, "
                                f"got {type(action).__name__}")
        return cls(entries=tuple(sorted(plan.items())),
                   spec_hash=spec_hash)

    def applies_to(self, spec_hash: Optional[str]) -> bool:
        """Whether this plan is armed for a sweep with that hash.

        An unscoped plan applies everywhere; a scoped plan only where
        the hashes match (an unhashable sweep never matches a scoped
        plan).
        """
        if self.spec_hash is None:
            return True
        return spec_hash is not None and spec_hash == self.spec_hash

    def get(self, shard: int, attempt: int) -> Optional[FaultAction]:
        """The action scheduled for this attempt coordinate, if any."""
        for key, action in self.entries:
            if key == (shard, attempt):
                return action
        return None

    def worker_action(self, shard: int, attempt: int) -> Optional[FaultAction]:
        """The worker-side action for this coordinate, if any."""
        action = self.get(shard, attempt)
        if action is not None and action.kind in WORKER_FAULT_KINDS:
            return action
        return None

    def store_action(self, shard: int, attempt: int) -> Optional[FaultAction]:
        """The store-side action for this coordinate, if any."""
        action = self.get(shard, attempt)
        if action is not None and action.kind in STORE_FAULT_KINDS:
            return action
        return None

    def __len__(self) -> int:
        return len(self.entries)


def trigger_worker_fault(action: FaultAction) -> None:
    """Execute a worker-side fault inside the worker process.

    Called by the supervised shard entry point *before* the shard does
    any work, so a crash or hang never leaves a half-observed metrics
    registry behind.  ``slow`` returns normally after its delay — the
    shard then runs to completion.
    """
    if action.kind == "crash":
        # os._exit skips atexit/finally — the closest a test can get to
        # an OOM kill without involving the kernel.
        os._exit(action.exitcode)
    if action.kind == "raise":
        raise InjectedFault("injected worker exception")
    if action.kind in ("hang", "slow"):
        time.sleep(action.seconds)
        return
    raise ValueError(f"{action.kind!r} is not a worker-side fault")


def corrupt_file(path: str, mode: str = "truncate") -> None:
    """Damage a committed file in place (at-rest corruption).

    ``truncate`` chops the file to half its length (a torn write /
    lost tail); ``bitflip`` XORs one bit in the middle (silent media
    corruption).  Both survive a fresh ``open`` — only content
    validation (unpickling + checksum) can tell.
    """
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as fh:
            fh.truncate(max(1, size // 2))
        return
    if mode == "bitflip":
        offset = max(0, size // 2)
        with open(path, "r+b") as fh:
            fh.seek(offset)
            byte = fh.read(1)
            flipped = bytes([(byte[0] if byte else 0) ^ 0x40])
            fh.seek(offset)
            fh.write(flipped)
        return
    raise ValueError(f"unknown corruption mode {mode!r} "
                     f"(expected one of {CORRUPT_MODES})")

"""Exact worst-case adversaries via game solving.

The scheduler-vs-coins interaction is a Markov decision process: in
each configuration the adversary picks which enabled processor moves
(maximizing expected cost), then nature samples the processor's branch.
For protocols with a *finite* reachable configuration space — the
two-processor protocol is one — the optimal adversary and the exact
game value can be computed by value iteration over the configuration
graph.

This turns Theorem 7's inequality into a computation: the corollary
says the expected decision cost is at most 10 against *every*
adversary; :func:`solve_game` produces the cost of the *best possible*
adversary, so `value ≤ 10` is a machine-checked (numerical) instance of
the theorem, and :class:`OptimalAdversary` replays the maximizing
policy so Monte-Carlo measurements can be taken at the true worst case
rather than at hand-designed heuristics.

Two cost models:

* ``cost="processor:<pid>"`` — count only that processor's steps until
  it decides (the paper's per-processor metric).  Steps of others are
  free for the adversary, which may therefore stage arbitrary mischief
  before letting the victim move.
* ``cost="total"`` — count every step until all processors have
  decided.

Value iteration converges because the protocols decide with probability
one from every reachable configuration (verified separately by valency
analysis: no nullvalent configurations), making the expected cost
finite and the Bellman operator a monotone map with a finite fixpoint.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.checker.explorer import ConfigGraph, explore
from repro.errors import ExplorationLimitError
from repro.sched.base import Scheduler
from repro.sim.config import Configuration
from repro.sim.kernel import Activate, SchedulerView


@dataclasses.dataclass
class GameSolution:
    """The solved scheduling game."""

    value: float                      # expected cost at the root
    values: Dict[Configuration, float]
    policy: Dict[Configuration, int]  # adversary's maximizing choice
    iterations: int
    cost_model: str

    def policy_for(self, config: Configuration) -> Optional[int]:
        return self.policy.get(config)


def _step_cost(cost_model: str, pid: int) -> float:
    if cost_model == "total":
        return 1.0
    if cost_model.startswith("processor:"):
        victim = int(cost_model.split(":", 1)[1])
        return 1.0 if pid == victim else 0.0
    raise ValueError(f"unknown cost model {cost_model!r}")


def _is_terminal(graph: ConfigGraph, config: Configuration,
                 cost_model: str) -> bool:
    protocol = graph.protocol
    if cost_model == "total":
        return not graph.edges.get(config)
    victim = int(cost_model.split(":", 1)[1])
    return protocol.output(victim, config.states[victim]) is not None


def solve_game(
    protocol,
    inputs: Sequence[Hashable],
    cost_model: str = "processor:0",
    max_states: int = 500_000,
    tolerance: float = 1e-12,
    max_iterations: int = 100_000,
) -> GameSolution:
    """Solve the adversary-vs-coins game by value iteration.

    Requires the protocol's reachable configuration space to be finite
    within ``max_states`` (raises :class:`ExplorationLimitError`
    otherwise).  Returns the exact worst-case expected cost and the
    maximizing policy.
    """
    graph = explore(protocol, inputs, max_states=max_states)
    if not graph.complete:
        raise ExplorationLimitError(
            "game solving needs the complete reachable graph",
            states_explored=graph.n_states,
        )
    _step_cost(cost_model, 0)  # validate the model string early

    values: Dict[Configuration, float] = {c: 0.0 for c in graph.depth_of}
    policy: Dict[Configuration, int] = {}

    for iteration in range(max_iterations):
        delta = 0.0
        for config in graph.depth_of:
            if _is_terminal(graph, config, cost_model):
                continue
            succ = graph.edges.get(config, ())
            if not succ:
                continue
            by_pid: Dict[int, float] = {}
            for s in succ:
                contrib = s.probability * values[s.config]
                by_pid[s.pid] = by_pid.get(
                    s.pid, _step_cost(cost_model, s.pid)
                ) + contrib
            best_pid, best_val = max(by_pid.items(), key=lambda kv: kv[1])
            delta = max(delta, abs(best_val - values[config]))
            values[config] = best_val
            policy[config] = best_pid
        if delta < tolerance:
            return GameSolution(
                value=values[graph.roots[0]],
                values=values,
                policy=policy,
                iterations=iteration + 1,
                cost_model=cost_model,
            )
    raise ExplorationLimitError(
        f"value iteration did not converge in {max_iterations} sweeps "
        "(is the protocol terminating from every configuration?)",
        states_explored=graph.n_states,
    )


def evaluate_policy(
    protocol,
    inputs: Sequence[Hashable],
    choose_pid,
    cost_model: str = "processor:0",
    max_states: int = 500_000,
    tolerance: float = 1e-12,
    max_iterations: int = 100_000,
) -> GameSolution:
    """Exact expected cost of a *fixed* deterministic scheduler policy.

    ``choose_pid(config, enabled)`` must return the processor the
    policy activates in ``config`` (e.g. round-robin keyed off a state
    component, or min-id).  The result is the exact expectation of the
    cost model under that scheduler — the Markov-chain counterpart of
    :func:`solve_game`'s Markov-game maximum, useful for putting exact
    numbers under the Monte-Carlo columns of benchmark E2.

    Restricted to *memoryless* policies (functions of the configuration
    only); stateful schedulers like round-robin need their counter
    encoded in the protocol state to be evaluable this way, so the
    simplest honest example is the min-enabled-id policy.
    """
    graph = explore(protocol, inputs, max_states=max_states)
    if not graph.complete:
        raise ExplorationLimitError(
            "policy evaluation needs the complete reachable graph",
            states_explored=graph.n_states,
        )
    _step_cost(cost_model, 0)

    values: Dict[Configuration, float] = {c: 0.0 for c in graph.depth_of}
    for iteration in range(max_iterations):
        delta = 0.0
        for config in graph.depth_of:
            if _is_terminal(graph, config, cost_model):
                continue
            succ = graph.edges.get(config, ())
            if not succ:
                continue
            enabled = tuple(sorted({s.pid for s in succ}))
            pid = choose_pid(config, enabled)
            if pid is None:
                # Uniformly random scheduler: average over the enabled.
                val = sum(
                    (_step_cost(cost_model, p) + sum(
                        s.probability * values[s.config]
                        for s in succ if s.pid == p
                    )) for p in enabled
                ) / len(enabled)
            else:
                if pid not in enabled:
                    raise ValueError(
                        f"policy chose disabled processor {pid} in {config}"
                    )
                val = _step_cost(cost_model, pid) + sum(
                    s.probability * values[s.config]
                    for s in succ if s.pid == pid
                )
            delta = max(delta, abs(val - values[config]))
            values[config] = val
        if delta < tolerance:
            return GameSolution(
                value=values[graph.roots[0]],
                values=values,
                policy={},
                iterations=iteration + 1,
                cost_model=cost_model,
            )
    raise ExplorationLimitError(
        f"policy evaluation did not converge in {max_iterations} sweeps",
        states_explored=graph.n_states,
    )


class OptimalAdversary(Scheduler):
    """Replay a solved game's maximizing policy as a scheduler.

    Configurations outside the policy (which should not occur when the
    protocol and inputs match the solved game) fall back to the lowest
    enabled pid.
    """

    def __init__(self, solution: GameSolution) -> None:
        self._solution = solution

    @property
    def name(self) -> str:
        return f"OptimalAdversary({self._solution.cost_model})"

    def choose(self, view: SchedulerView) -> Activate:
        pid = self._solution.policy_for(view.configuration)
        if pid is None or pid not in view.enabled:
            pid = view.enabled[0]
        return Activate(pid)

"""Benign (non-adaptive) schedulers.

These model "honest" asynchrony: interleavings chosen without looking at
protocol state.  They are the easy end of the adversary spectrum and
serve as baselines in the benchmark harness — the paper's bounds must
hold against the *adaptive* adversaries in :mod:`repro.sched.adversary`,
so they certainly hold here, and the gap between the two is itself an
ablation experiment (E-ablations in DESIGN.md).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional, Sequence

from repro.sched.base import Scheduler
from repro.sim.kernel import Activate, SchedulerView
from repro.sim.rng import ReplayableRng


def _first_enabled(view: SchedulerView, preferred: Iterable[int]) -> int:
    """Return the first enabled pid from ``preferred``, else any enabled."""
    enabled = set(view.enabled)
    for pid in preferred:
        if pid in enabled:
            return pid
    return view.enabled[0]


class RoundRobinScheduler(Scheduler):
    """Cycle through processors in id order, skipping halted ones.

    The fairest possible schedule: every live processor is activated
    once per round.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def choose(self, view: SchedulerView) -> Activate:
        n = view.protocol.n_processes
        enabled = set(view.enabled)
        for offset in range(n):
            pid = (self._next + offset) % n
            if pid in enabled:
                self._next = (pid + 1) % n
                return Activate(pid)
        # Unreachable: the kernel never consults a scheduler with no
        # enabled processor.
        raise RuntimeError("no enabled processor")


class RandomScheduler(Scheduler):
    """Activate a uniformly random enabled processor each step.

    ``choose`` returns the bare pid (the kernel's documented int
    shorthand for ``Activate``): this scheduler runs once per step in
    every Monte-Carlo batch, and skipping the action-object allocation
    is measurable at that frequency.
    """

    def __init__(self, rng: ReplayableRng) -> None:
        self._rng = rng

    def choose(self, view: SchedulerView) -> int:
        return self._rng.choice(view.enabled)


class FixedScheduler(Scheduler):
    """Follow a fixed finite schedule, then fall back to round-robin.

    Schedule entries naming halted/crashed processors are skipped.  This
    is the tool for replaying hand-constructed schedules such as the
    ones appearing in the paper's proofs — e.g. ``(1, 2, 2, 2, ...)``
    from Lemma 3.
    """

    def __init__(self, schedule: Sequence[int]) -> None:
        self._schedule: Iterator[int] = iter(tuple(schedule))
        self._fallback = RoundRobinScheduler()

    def choose(self, view: SchedulerView) -> Activate:
        enabled = set(view.enabled)
        for pid in self._schedule:
            if pid in enabled:
                return Activate(pid)
        return self._fallback.choose(view)


class ObliviousScheduler(Scheduler):
    """A randomized but state-blind adversary.

    Draws the entire interleaving pattern ahead of time from a seeded
    stream (here: lazily, but without ever reading the view's states).
    Models adversaries that control timing but cannot inspect memory.
    """

    def __init__(self, rng: ReplayableRng, burst_max: int = 4) -> None:
        self._rng = rng
        self._burst_max = burst_max
        self._pending: Iterator[int] = iter(())

    def _refill(self, n: int) -> None:
        pid = self._rng.randint(0, n - 1)
        burst = self._rng.randint(1, self._burst_max)
        self._pending = iter([pid] * burst)

    def choose(self, view: SchedulerView) -> Activate:
        n = view.protocol.n_processes
        enabled = set(view.enabled)
        for _ in range(64):
            for pid in self._pending:
                if pid in enabled:
                    return Activate(pid)
            self._refill(n)
        # All bursts kept naming halted processors; pick any enabled.
        return Activate(view.enabled[0])


class BlockScheduler(Scheduler):
    """Give each processor a block of ``block`` consecutive steps.

    With ``block=1`` this is round-robin; large blocks approximate a
    system where one processor runs far faster than the others.
    """

    def __init__(self, block: int, order: Optional[Sequence[int]] = None) -> None:
        if block < 1:
            raise ValueError("block must be >= 1")
        self._block = block
        self._order = tuple(order) if order is not None else None
        self._cycle: Optional[Iterator[int]] = None
        self._remaining = 0
        self._current = 0

    def choose(self, view: SchedulerView) -> Activate:
        if self._cycle is None:
            order = self._order or tuple(range(view.protocol.n_processes))
            self._cycle = itertools.cycle(order)
        enabled = set(view.enabled)
        if self._remaining > 0 and self._current in enabled:
            self._remaining -= 1
            return Activate(self._current)
        for _ in range(view.protocol.n_processes + 1):
            pid = next(self._cycle)
            if pid in enabled:
                self._current = pid
                self._remaining = self._block - 1
                return Activate(pid)
        return Activate(view.enabled[0])

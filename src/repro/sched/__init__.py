"""Adversary scheduler framework.

Section 2 of the paper defines a scheduler as a mapping from
configurations to processors, best viewed as an adversary with complete
knowledge of processor states and register contents (but no foresight
into coin flips).  This subpackage provides:

* :mod:`repro.sched.base` — the :class:`Scheduler` ABC,
* :mod:`repro.sched.simple` — benign schedulers (round-robin, random,
  fixed sequences, oblivious interleavings),
* :mod:`repro.sched.adversary` — adaptive full-knowledge adversaries,
  including the Section 5 strategy that kills the naive protocol,
* :mod:`repro.sched.crash` — fail-stop crash injection (the paper's
  protocols tolerate up to n−1 crashes).
"""

from repro.sched.base import Scheduler
from repro.sched.simple import (
    FixedScheduler,
    ObliviousScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    BlockScheduler,
)
from repro.sched.adversary import (
    AdaptiveAdversary,
    DisagreementAdversary,
    LaggardFreezer,
    NaiveKillerAdversary,
    ReadValueAdversary,
    SplitVoteAdversary,
)
from repro.sched.crash import CrashingScheduler, CrashPlan
from repro.sched.lookahead import LookaheadAdversary
from repro.sched.optimal import (
    GameSolution,
    OptimalAdversary,
    evaluate_policy,
    solve_game,
)

__all__ = [
    "Scheduler",
    "FixedScheduler",
    "ObliviousScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "BlockScheduler",
    "AdaptiveAdversary",
    "DisagreementAdversary",
    "LaggardFreezer",
    "NaiveKillerAdversary",
    "ReadValueAdversary",
    "SplitVoteAdversary",
    "CrashingScheduler",
    "CrashPlan",
    "LookaheadAdversary",
    "GameSolution",
    "evaluate_policy",
    "OptimalAdversary",
    "solve_game",
]

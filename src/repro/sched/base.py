"""Scheduler abstract base class.

A scheduler receives a :class:`~repro.sim.kernel.SchedulerView` — the
full configuration plus run bookkeeping — and returns either
:class:`~repro.sim.kernel.Activate` (who moves next) or
:class:`~repro.sim.kernel.Crash` (fail-stop a processor).  Returning a
bare processor id is accepted as shorthand for activation.

Contract: the returned processor must be *enabled* (alive and
undecided).  The kernel raises :class:`~repro.errors.SimulationError`
otherwise, because an adversary that silently "activates" a halted
processor would let broken protocols appear live.
"""

from __future__ import annotations

import abc
from typing import Hashable, Tuple, Union

from repro.sim.kernel import Activate, Crash, SchedulerView


class Scheduler(abc.ABC):
    """Base class for all schedulers."""

    @abc.abstractmethod
    def choose(self, view: SchedulerView) -> Union[Activate, Crash, int]:
        """Pick the next scheduler action for the given configuration."""

    def resolve_read(self, view: SchedulerView, pid: int, register: str,
                     choices: Tuple[Hashable, ...]) -> Hashable:
        """Pick a contended weak-memory read's return value.

        Consulted by the kernel under ``regular``/``safe`` register
        semantics whenever a read has more than one legal return value
        (``choices``, committed value first — see
        :meth:`repro.sim.memory.MemoryModel.read_choices`).  The default
        returns ``choices[0]``, i.e. "the overlapping write has not
        taken effect yet", which preserves atomic-looking behavior for
        schedulers that don't care.  Adversarial schedulers override
        this (or pre-commit via ``Activate(pid, read_value=...)``,
        which takes precedence).  Returning a value outside ``choices``
        is a scheduler bug surfaced as a
        :class:`~repro.errors.SimulationError`.
        """
        return choices[0]

    @property
    def name(self) -> str:
        """Scheduler name used in experiment reports."""
        return type(self).__name__

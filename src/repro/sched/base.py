"""Scheduler abstract base class.

A scheduler receives a :class:`~repro.sim.kernel.SchedulerView` — the
full configuration plus run bookkeeping — and returns either
:class:`~repro.sim.kernel.Activate` (who moves next) or
:class:`~repro.sim.kernel.Crash` (fail-stop a processor).  Returning a
bare processor id is accepted as shorthand for activation.

Contract: the returned processor must be *enabled* (alive and
undecided).  The kernel raises :class:`~repro.errors.SimulationError`
otherwise, because an adversary that silently "activates" a halted
processor would let broken protocols appear live.
"""

from __future__ import annotations

import abc
from typing import Union

from repro.sim.kernel import Activate, Crash, SchedulerView


class Scheduler(abc.ABC):
    """Base class for all schedulers."""

    @abc.abstractmethod
    def choose(self, view: SchedulerView) -> Union[Activate, Crash, int]:
        """Pick the next scheduler action for the given configuration."""

    @property
    def name(self) -> str:
        """Scheduler name used in experiment reports."""
        return type(self).__name__

"""Fail-stop crash injection.

The paper's system model tolerates fail-stop errors of up to all but one
of the processors (Section 1) — in a fully asynchronous system a crashed
processor is indistinguishable from one that is merely very slow, so any
wait-free protocol handles crashes for free.  This module makes crashes
explicit so benchmark E8 can measure that claim: a
:class:`CrashingScheduler` wraps any inner scheduler and fail-stops
processors according to a :class:`CrashPlan`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

from repro.sched.base import Scheduler
from repro.sim.kernel import Activate, Crash, SchedulerView


AdaptiveCrashRule = Callable[[SchedulerView], Optional[int]]


@dataclasses.dataclass(frozen=True)
class CrashPlan:
    """When to crash whom.

    ``at_step`` maps a global step index to the processor to crash just
    before that step executes.  ``after_activations`` maps a processor
    id to the number of its own steps after which it crashes (e.g.
    ``{2: 1}`` crashes processor 2 right after its first step — it wrote
    its input and died).  ``rule`` is an arbitrary adaptive predicate
    returning a pid to crash now, or ``None``.
    """

    at_step: Dict[int, int] = dataclasses.field(default_factory=dict)
    after_activations: Dict[int, int] = dataclasses.field(default_factory=dict)
    rule: Optional[AdaptiveCrashRule] = None

    @classmethod
    def kill_all_but(cls, survivor: int, n: int, after: int = 1) -> "CrashPlan":
        """Crash every processor except ``survivor`` after ``after`` steps each.

        This is the extreme t = n−1 scenario: the survivor must still
        decide on its own.
        """
        return cls(after_activations={
            pid: after for pid in range(n) if pid != survivor
        })


class CrashingScheduler(Scheduler):
    """Wrap an inner scheduler with crash injection.

    Consults the plan before every delegation; at most one crash is
    issued per consultation (the kernel loops until it gets an
    activation, so multi-crash plans drain over consecutive calls).
    Never crashes the last enabled processor: the model requires at
    least one live processor, and benchmark E8's point is precisely that
    the survivor still terminates.
    """

    def __init__(self, inner: Scheduler, plan: CrashPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._done: set = set()

    @property
    def name(self) -> str:
        return f"CrashingScheduler({self._inner.name})"

    def _pending_crash(self, view: SchedulerView) -> Optional[int]:
        candidates = []
        step_pid = self._plan.at_step.get(view.step_index)
        if step_pid is not None and ("step", view.step_index) not in self._done:
            candidates.append((("step", view.step_index), step_pid))
        for pid, limit in self._plan.after_activations.items():
            key = ("acts", pid)
            if key not in self._done and view.activations(pid) >= limit:
                candidates.append((key, pid))
        if self._plan.rule is not None:
            pid = self._plan.rule(view)
            if pid is not None:
                key = ("rule", pid, view.step_index)
                if key not in self._done:
                    candidates.append((key, pid))
        for key, pid in candidates:
            if pid in view.enabled and len(view.enabled) > 1:
                self._done.add(key)
                return pid
            if pid not in view.alive or view.decided(pid) is not None:
                # Target already gone; retire the directive.
                self._done.add(key)
        return None

    def choose(self, view: SchedulerView) -> Union[Activate, Crash, int]:
        pid = self._pending_crash(view)
        if pid is not None:
            return Crash(pid)
        return self._inner.choose(view)

"""Bounded-horizon expectimax adversary.

:mod:`repro.sched.optimal` solves the scheduling game *exactly*, but
only for protocols whose reachable configuration space is finite.  The
three-processor protocols are not (or not tractably so).  This module
provides the strongest practical adversary for them: at every decision
point it expands the game tree *on the fly* to a bounded horizon —
adversary nodes maximize, coin nodes average — and picks the activation
that minimizes expected decision progress within the horizon.

The objective within the horizon is the expected number of processors
that reach a decision, discounted so that *earlier* decisions count
more (the adversary prefers delaying over merely reshuffling).  Leaves
are scored 0, so the adversary is optimistic about its own future play
— a standard admissible cut-off.

Cost: O((n·b)^h) per step with branching b ≤ 2, so horizons of 4-8 are
practical.  Against the two-processor protocol (where the exact game is
solvable) the lookahead adversary with a modest horizon already forces
costs close to the true game value, which is the calibration test in
``tests/test_sched_lookahead.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.checker.explorer import successors
from repro.sched.base import Scheduler
from repro.sim.config import Configuration
from repro.sim.kernel import Activate, SchedulerView


class LookaheadAdversary(Scheduler):
    """Expectimax adversary with a bounded horizon.

    Parameters
    ----------
    horizon:
        Number of steps to look ahead (≥ 1).  Each additional step
        multiplies per-decision cost by roughly the branching factor.
    discount:
        Weight decay per step for decisions occurring deeper in the
        tree; values < 1 make the adversary prefer *delaying* decisions
        over pushing them just past the horizon.
    """

    def __init__(self, horizon: int = 4, discount: float = 0.9) -> None:
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self._horizon = horizon
        self._discount = discount

    @property
    def name(self) -> str:
        return f"LookaheadAdversary(h={self._horizon})"

    def choose(self, view: SchedulerView) -> Activate:
        protocol = view.protocol
        layout = view.layout
        memo: Dict[Tuple[Configuration, int], float] = {}

        def decided_count(config: Configuration) -> int:
            return len(config.decisions(protocol))

        def value(config: Configuration, depth: int) -> float:
            """Expected discounted decision mass from here (adversary
            minimizes it by choosing who moves)."""
            if depth == 0:
                return 0.0
            key = (config, depth)
            if key in memo:
                return memo[key]
            base = decided_count(config)
            by_pid: Dict[int, float] = {}
            for s in successors(protocol, layout, config):
                newly = decided_count(s.config) - base
                contrib = s.probability * (
                    newly * (self._discount ** (self._horizon - depth))
                    + value(s.config, depth - 1)
                )
                by_pid[s.pid] = by_pid.get(s.pid, 0.0) + contrib
            if not by_pid:
                memo[key] = 0.0
                return 0.0
            best = min(by_pid.values())
            memo[key] = best
            return best

        config = view.configuration
        base = decided_count(config)
        scores: Dict[int, float] = {}
        for s in successors(protocol, layout, config):
            newly = decided_count(s.config) - base
            contrib = s.probability * (
                newly + value(s.config, self._horizon - 1)
            )
            scores[s.pid] = scores.get(s.pid, 0.0) + contrib
        if not scores:
            return Activate(view.enabled[0])
        # Minimize expected decision mass; break ties toward low pid for
        # reproducibility.
        best_pid = min(sorted(scores), key=lambda pid: scores[pid])
        return Activate(best_pid)

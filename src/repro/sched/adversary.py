"""Adaptive full-knowledge adversaries.

These schedulers exercise the strongest adversary the paper allows: a
mapping from full configurations (processor states + register contents)
to the next activated processor.  They may inspect everything *except*
future coin flips — the kernel samples probabilistic branches only after
the adversary has committed.

The library includes the concrete strategies the paper's analysis refers
to:

* :class:`DisagreementAdversary` — plays the Theorem 7 game against the
  two-processor protocol, trying to keep the two preference registers
  different for as long as possible.
* :class:`NaiveKillerAdversary` — the Section 5 strategy that defeats
  the naive "flip until everyone agrees" protocol: manufacture a frozen
  disagreement between two processors, then starve a third forever.
* :class:`LaggardFreezer` — withholds steps from the least-advanced
  processor, creating exactly the leader/laggard gaps the three-processor
  protocols must cope with.
* :class:`SplitVoteAdversary` — protocol-agnostic balance-keeper that
  tries to maintain an even split of preferences.

All of them are *fair-if-needed*: when their preferred victim set is
exhausted (processors decide or halt), they fall back to activating any
enabled processor, so runs always make progress.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from repro.sched.base import Scheduler
from repro.sim.kernel import Activate, SchedulerView
from repro.sim.ops import BOTTOM


Strategy = Callable[[SchedulerView], Optional[int]]


class AdaptiveAdversary(Scheduler):
    """Generic adaptive adversary driven by a strategy function.

    The strategy receives the full :class:`SchedulerView` and returns a
    processor id, or ``None`` to mean "no preference" (the adversary
    then falls back to the lowest-id enabled processor).
    """

    def __init__(self, strategy: Strategy, label: str = "adaptive") -> None:
        self._strategy = strategy
        self._label = label

    @property
    def name(self) -> str:
        return f"AdaptiveAdversary({self._label})"

    def choose(self, view: SchedulerView) -> Activate:
        pid = self._strategy(view)
        if pid is None or pid not in view.enabled:
            pid = view.enabled[0]
        return Activate(pid)


def _pc_of(state: Hashable) -> Optional[str]:
    """Duck-typed program counter of a protocol state (``None`` if absent)."""
    return getattr(state, "pc", None)


def _pref_of(value: Hashable) -> Hashable:
    """Duck-typed preference field of a register value.

    Protocol register contents are either bare preference values (the
    two-processor protocol) or records with a ``pref`` field (the
    three-processor protocols).
    """
    return getattr(value, "pref", value)


class DisagreementAdversary(Scheduler):
    """The Theorem 7 adversary for the two-processor protocol.

    Strategy: keep the two shared registers holding different values for
    as long as possible.

    * If the registers currently *differ*, activating a reader is safe
      for the adversary (the reader will see disagreement and go flip a
      coin), so prefer processors about to read.
    * If the registers currently *agree*, a reader would decide — so
      activate a processor about to write and hope its coin makes it
      overwrite with the other value.

    Theorem 7 shows that no strategy (this one included) pushes the
    expected decision cost above 10 steps per processor: each
    write-pair still produces agreement with probability ≥ 1/4.
    """

    def choose(self, view: SchedulerView) -> Activate:
        layout = view.layout
        regs = [view.configuration.registers[i] for i in range(len(layout))]
        prefs = [_pref_of(v) for v in regs]
        disagreement = len({p for p in prefs if p is not BOTTOM}) > 1

        readers = [
            pid for pid in view.enabled if _pc_of(view.state_of(pid)) == "read"
        ]
        writers = [
            pid for pid in view.enabled if _pc_of(view.state_of(pid)) == "write"
        ]
        if disagreement and readers:
            return Activate(readers[0])
        if not disagreement and writers:
            return Activate(writers[0])
        # No processor in the preferred phase: take any enabled one
        # (init-phase processors land here).
        return Activate(view.enabled[0])


class NaiveKillerAdversary(Scheduler):
    """The Section 5 counterexample strategy (requires n >= 3).

    Phase 1: run processor A until its register holds a value.
    Phase 2: run processor B until its register holds a value *different*
    from A's (each of B's phases rewrites a fresh coin flip, so this
    takes an expected O(1) phases).
    Phase 3: starve A and B forever and activate only the victim, which
    can never see unanimous registers and therefore never decides.

    Against the paper's protocols the same strategy is harmless — the
    victim eventually out-races the frozen pair by 2 and decides alone —
    which is exactly the comparison benchmark E4 draws.
    """

    def __init__(self, a: int = 0, b: int = 1, victim: int = 2,
                 register_of: Optional[Callable[[SchedulerView, int], Hashable]] = None) -> None:
        if len({a, b, victim}) != 3:
            raise ValueError("a, b, victim must be distinct")
        self._a = a
        self._b = b
        self._victim = victim
        self._register_of = register_of or self._default_register_of

    @staticmethod
    def _default_register_of(view: SchedulerView, pid: int) -> Hashable:
        """Value of the single register owned (written) by ``pid``."""
        for spec in view.layout.specs:
            if spec.writers == (pid,):
                return view.register(spec.name)
        raise ValueError(f"no single-writer register owned by processor {pid}")

    def choose(self, view: SchedulerView) -> Activate:
        enabled = set(view.enabled)
        val_a = _pref_of(self._register_of(view, self._a))
        val_b = _pref_of(self._register_of(view, self._b))
        if val_a is BOTTOM and self._a in enabled:
            return Activate(self._a)
        if (val_b is BOTTOM or val_b == val_a) and self._b in enabled:
            return Activate(self._b)
        if self._victim in enabled:
            return Activate(self._victim)
        return Activate(view.enabled[0])


class LaggardFreezer(Scheduler):
    """Starve the least-advanced processor; run the leaders.

    ``progress_of`` extracts a progress measure from a processor's
    state; the default uses the kernel's activation counts.  For the
    three-processor protocols this manufactures the "last processor two
    or more steps behind" situations that drive the bounded protocol's
    embedded two-processor phase.
    """

    def __init__(self, progress_of: Optional[Callable[[SchedulerView, int], float]] = None) -> None:
        self._progress_of = progress_of

    def choose(self, view: SchedulerView) -> Activate:
        def progress(pid: int) -> float:
            if self._progress_of is not None:
                return self._progress_of(view, pid)
            return float(view.activations(pid))

        enabled = list(view.enabled)
        if len(enabled) == 1:
            return Activate(enabled[0])
        laggard = min(enabled, key=progress)
        others = [pid for pid in enabled if pid != laggard]
        # Round-robin among the non-laggards to keep them both moving.
        leader = min(others, key=lambda pid: view.activations(pid))
        return Activate(leader)


class ReadValueAdversary(Scheduler):
    """Wrap any scheduler with a weak-memory read-value policy.

    Under ``regular``/``safe`` register semantics a contended read has
    several legal return values and the adversary picks one (see
    :mod:`repro.sim.memory`).  This wrapper delegates *who moves next*
    to an inner scheduler and adds the value-choosing half of the
    extended vocabulary:

    * ``"commit"`` — always return the committed value ``choices[0]``
      (the overlapping write never appears early; equivalent to not
      overriding ``resolve_read`` at all),
    * ``"adversarial"`` — prefer a value that *differs* from the
      reading processor's own preference, scanning the non-committed
      choices last-writer-first; this steers weak protocols toward
      manufactured disagreement, the HHT-style stress case,
    * ``"random"`` — draw uniformly from the legal set using the
      supplied :class:`~repro.sim.rng.ReplayableRng` stream (replayable
      like every other source of randomness).

    The wrapper never sees future coin flips: ``resolve_read`` runs
    after the scheduler committed to activating ``pid`` and before the
    kernel samples any further randomness for other processors, with
    only the current configuration in view.
    """

    POLICIES = ("commit", "adversarial", "random")

    def __init__(self, inner: Scheduler, policy: str = "adversarial",
                 rng=None) -> None:
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown read policy {policy!r} "
                f"(expected one of {self.POLICIES})"
            )
        if policy == "random" and rng is None:
            raise ValueError("policy 'random' needs an rng stream")
        self._inner = inner
        self._policy = policy
        self._rng = rng

    @property
    def name(self) -> str:
        return f"ReadValueAdversary({self._inner.name}, {self._policy})"

    def choose(self, view: SchedulerView):
        return self._inner.choose(view)

    def resolve_read(self, view: SchedulerView, pid: int, register: str,
                     choices) -> Hashable:
        if self._policy == "commit":
            return choices[0]
        if self._policy == "random":
            return self._rng.choice(choices)
        # "adversarial": the reader should see anything *but* what it
        # already believes — pending/garbage values first, newest last
        # write preferred.
        own = _pref_of(view.state_of(pid))
        for candidate in reversed(choices):
            if _pref_of(candidate) != own:
                return candidate
        return choices[0]


class SplitVoteAdversary(Scheduler):
    """Protocol-agnostic balance-keeping adversary.

    Tries to keep the multiset of register preferences split:

    * if preferences are split, activate a processor about to read
      (reads cannot create agreement in register contents),
    * if preferences are unanimous, activate a processor about to
      write whose *state* preference differs from the register
      consensus — or failing that, any writer, hoping the coin flips
      the value.

    Works against any protocol whose registers expose a ``pref`` field
    (or are bare values) and whose states expose ``pc``; degrades to
    lowest-id scheduling otherwise.
    """

    def __init__(self, pref_extractor: Callable[[Hashable], Hashable] = _pref_of) -> None:
        self._pref = pref_extractor

    def choose(self, view: SchedulerView) -> Activate:
        prefs = [
            self._pref(v) for v in view.configuration.registers
        ]
        real = [p for p in prefs if p is not BOTTOM and p is not None]
        split = len(set(real)) > 1

        readers = [
            pid for pid in view.enabled if _pc_of(view.state_of(pid)) == "read"
        ]
        writers = [
            pid for pid in view.enabled if _pc_of(view.state_of(pid)) == "write"
        ]
        if split and readers:
            return Activate(readers[0])
        if not split and writers:
            return Activate(writers[0])
        if writers:
            return Activate(writers[0])
        return Activate(view.enabled[0])

"""Picklable factory specs for cross-process batch execution.

:class:`~repro.sim.runner.ExperimentRunner` takes *factories* for the
protocol, the scheduler, and the inputs.  In-process those are usually
lambdas; lambdas cannot cross a ``multiprocessing`` spawn boundary, so
sharded batches need factories that pickle by value.  The spec classes
here are frozen dataclasses that name what to build — they serialize as
a few strings and ints, and each worker process rebuilds the real
objects locally on first call.

The names accepted here are exactly the CLI vocabulary
(``repro report --protocol ... --scheduler ...``), so the CLI's serial
and parallel paths construct identical runs.

Custom factories work too: any module-level function (or picklable
callable class) is a valid factory for the parallel engine.  Only
closures and lambdas are rejected, at submission time, with a pointer
back to this module.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Tuple

#: Protocol names understood by :class:`ProtocolSpec` (CLI vocabulary).
PROTOCOL_NAMES = ("two", "three-unbounded", "three-bounded", "n", "naive")

#: Scheduler names understood by :class:`SchedulerSpec` (CLI vocabulary).
SCHEDULER_NAMES = ("random", "round-robin", "oblivious", "split-vote",
                   "laggard-freezer", "read-adversary")


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """A protocol factory that pickles as its name.

    ``n_processes`` is only consulted by the variable-width protocols
    (``"n"`` and ``"naive"``); the fixed-width paper protocols ignore
    it.
    """

    name: str
    n_processes: int = 2

    def __call__(self):
        from repro.core import (
            NaiveProtocol,
            NProcessProtocol,
            ThreeBoundedProtocol,
            ThreeUnboundedProtocol,
            TwoProcessProtocol,
        )

        if self.name == "two":
            return TwoProcessProtocol()
        if self.name == "three-unbounded":
            return ThreeUnboundedProtocol()
        if self.name == "three-bounded":
            return ThreeBoundedProtocol()
        if self.name == "n":
            return NProcessProtocol(self.n_processes)
        if self.name == "naive":
            return NaiveProtocol(self.n_processes)
        raise ValueError(f"unknown protocol {self.name!r} "
                         f"(expected one of {PROTOCOL_NAMES})")


@dataclasses.dataclass(frozen=True)
class SchedulerSpec:
    """A scheduler factory that pickles as its name.

    Called per run with that run's ``rng.child("sched")`` stream, so
    stateful adversaries are fresh every run and random schedulers are
    seeded identically to the serial path.
    """

    name: str

    def __call__(self, rng):
        from repro.sched import (
            LaggardFreezer,
            ObliviousScheduler,
            RandomScheduler,
            ReadValueAdversary,
            RoundRobinScheduler,
            SplitVoteAdversary,
        )

        if self.name == "random":
            return RandomScheduler(rng)
        if self.name == "round-robin":
            return RoundRobinScheduler()
        if self.name == "oblivious":
            return ObliviousScheduler(rng)
        if self.name == "split-vote":
            return SplitVoteAdversary()
        if self.name == "laggard-freezer":
            return LaggardFreezer()
        if self.name == "read-adversary":
            # Random activation order plus hostile weak-memory read
            # resolution (a no-op wrapper under atomic semantics).
            return ReadValueAdversary(RandomScheduler(rng),
                                      policy="adversarial")
        raise ValueError(f"unknown scheduler {self.name!r} "
                         f"(expected one of {SCHEDULER_NAMES})")


@dataclasses.dataclass(frozen=True)
class ConstantInputs:
    """An inputs factory returning the same tuple for every run."""

    values: Tuple[Hashable, ...]

    def __call__(self, run_index: int, rng) -> Tuple[Hashable, ...]:
        return self.values

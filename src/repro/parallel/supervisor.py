"""Fault-tolerant shard supervision for Monte-Carlo sweeps.

:func:`run_parallel` (the plain engine) assumes every worker is
well-behaved: one OOM-killed process, one hung scheduler, one corrupt
shard file and the whole sweep dies.  This module is the engine's
fault-tolerant sibling — the same sharding, the same merge, the same
bit-identical results, but each shard runs in its *own* supervised
child process with

* a **watchdog**: a shard that exceeds ``policy.shard_timeout`` is
  killed and treated like any other fault;
* **crash detection**: a child that dies without reporting (OOM kill,
  ``os._exit``, segfault) is detected by pipe EOF + exitcode;
* **bounded retries** with deterministic, jitter-free exponential
  backoff (``min(cap, base · 2^(n-1))`` — replayable, unlike the
  usual randomized backoff);
* **graceful degradation** (``on_fault="degrade"``): a shard that
  keeps faulting on ``engine="vector"`` retries on ``fast``, then
  ``reference``.  Results stay bit-identical because the engines are
  differentially verified (docs/IR.md §5) and the shard commits under
  the *original* spec's content address;
* **quarantine**: a shard that fails ``max_retries`` times is set
  aside and the sweep *completes*, returning a structured
  :class:`FaultReport` naming the exact unfinished index ranges
  instead of dying at 99%.

The determinism-under-faults contract (docs/ROBUSTNESS.md): every run
is a pure function of ``(root_seed, run_index)``, so however many
crashes, hangs, retries, degradations, or healed shard files a sweep
survives, the merged ``RunStats`` list, metrics snapshot, and journal
bytes are bit-identical to the fault-free serial run.  Fault
*observability* therefore lives outside the deterministic artifacts:
events stream to the telemetry file (already wall-clock-stamped and
non-deterministic by design) as ``{"kind": "fault", ...}`` records,
and the aggregate :class:`FaultReport` rides on ``BatchStats.faults``.

Fault injection for tests comes from :mod:`repro.faults` — pass a
:class:`~repro.faults.FaultPlan` and the supervisor injects worker
crashes, raised exceptions, hangs, slow shards, failed commits, and
at-rest corruption at exact ``(shard, attempt)`` coordinates,
replayably.
"""

from __future__ import annotations

import dataclasses
import json
import os
import queue as queue_module
import time
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.faults import FaultAction, FaultPlan, corrupt_file, \
    trigger_worker_fault
from repro.obs.journal import concatenate_journals
from repro.obs.metrics import MetricsRegistry
from repro.parallel.engine import (BatchSpec, ShardResult, ShardTask,
                                   _check_picklable, _execute_shard,
                                   _shard_payload, _warm_imports,
                                   plan_shards,
                                   shard_journal_path)

#: Engine step-down order for ``on_fault="degrade"``: a shard faulting
#: on one rung retries on the next.  All rungs are differentially
#: verified bit-identical (tests/test_engines.py, docs/IR.md §5), so
#: degradation trades speed for robustness, never results.
DEGRADE_LADDER = ("vector", "fast", "reference")

#: Recognized ``on_fault`` policies.
ON_FAULT_MODES = ("retry", "degrade", "quarantine", "fail")

_POLL_S = 0.01


class SupervisorError(RuntimeError):
    """A supervised sweep aborted under ``on_fault="fail"``."""


@dataclasses.dataclass(frozen=True)
class SupervisorPolicy:
    """How the supervisor reacts to a faulting shard.

    ``shard_timeout``
        Watchdog in seconds per shard *attempt*; ``None`` disables it
        (a hung shard then hangs the sweep, exactly like the plain
        engine).
    ``max_retries``
        Retries per shard after its first failure; attempt numbering
        is 0-based, so a shard executes at most ``max_retries + 1``
        times before quarantine.
    ``on_fault``
        ``retry`` (default) — retry on the same engine, quarantine
        after ``max_retries``; ``degrade`` — like retry but each retry
        steps down :data:`DEGRADE_LADDER`; ``quarantine`` — give up on
        the first fault; ``fail`` — raise :class:`SupervisorError` on
        the first fault (the plain engine's behavior, with a better
        diagnosis).
    ``backoff_base`` / ``backoff_cap``
        Deterministic exponential backoff before retry ``n``:
        ``min(cap, base · 2^(n-1))`` seconds.  Jitter-free on purpose —
        replaying a fault plan replays the schedule too.
    """

    shard_timeout: Optional[float] = None
    max_retries: int = 2
    on_fault: str = "retry"
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.on_fault not in ON_FAULT_MODES:
            raise ValueError(f"unknown on_fault mode {self.on_fault!r} "
                             f"(expected one of {ON_FAULT_MODES})")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be > 0, "
                             f"got {self.shard_timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")

    def backoff(self, retry: int) -> float:
        """Delay in seconds before retry ``retry`` (1-based)."""
        if retry < 1:
            raise ValueError(f"retry numbering is 1-based, got {retry}")
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** (retry - 1)))


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One observed fault and what the supervisor did about it.

    ``kind`` is ``crash`` / ``exception`` / ``timeout`` /
    ``commit-fail`` / ``corrupt`` / ``healed``; ``action`` is
    ``retry`` / ``retry@<engine>`` (a degradation) / ``quarantine`` /
    ``damaged`` (injected at-rest corruption, shard still complete) /
    ``healed`` (damaged file quarantined on resume, shard recomputed).
    """

    shard: int
    attempt: int
    kind: str
    engine: str
    action: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class FaultReport:
    """Everything that went wrong in one supervised sweep.

    ``quarantined`` lists the exact ``(start, stop)`` run-index ranges
    the sweep finished *without* — re-run with the same spec and store
    to fill them in.  ``healed`` lists damaged store files renamed to
    ``*.corrupt`` and recomputed.  The sweep's deterministic artifacts
    (runs / metrics / journal) never mention faults; this report is
    the observability surface.
    """

    events: List[FaultEvent] = dataclasses.field(default_factory=list)
    quarantined: List[Tuple[int, int]] = \
        dataclasses.field(default_factory=list)
    healed: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every shard completed (no quarantined ranges)."""
        return not self.quarantined

    @property
    def n_faults(self) -> int:
        return len(self.events)

    @property
    def n_retries(self) -> int:
        return sum(1 for e in self.events if e.action.startswith("retry"))

    @property
    def n_degradations(self) -> int:
        return sum(1 for e in self.events if e.action.startswith("retry@"))

    @property
    def runs_missing(self) -> int:
        return sum(stop - start for start, stop in self.quarantined)

    def counts(self) -> Dict[str, int]:
        """Fault tally by kind (the ``repro report`` fault metrics)."""
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def quarantined_ranges(self) -> List[Tuple[int, int]]:
        """Quarantined index ranges, sorted and coalesced."""
        merged: List[Tuple[int, int]] = []
        for start, stop in sorted(self.quarantined):
            if merged and merged[-1][1] == start:
                merged[-1] = (merged[-1][0], stop)
            else:
                merged.append((start, stop))
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": [e.to_dict() for e in self.events],
            "quarantined": [list(r) for r in self.quarantined_ranges()],
            "healed": list(self.healed),
            "counts": self.counts(),
            "n_retries": self.n_retries,
            "n_degradations": self.n_degradations,
            "runs_missing": self.runs_missing,
        }


def _supervised_shard(task: ShardTask, fault: Optional[FaultAction],
                      conn) -> None:
    """Child-process entry point: run one shard, report over the pipe.

    Module-level so it pickles under ``spawn``.  Sends ``("ok",
    ShardResult)`` on success or ``("error", summary, traceback)`` on
    an exception; an injected (or real) crash sends nothing — the
    parent sees pipe EOF plus a nonzero exitcode.  The injected fault,
    if any, triggers *before* the shard does any work, so a crash or
    hang never leaves a half-observed shard behind.
    """
    try:
        if fault is not None:
            trigger_worker_fault(fault)
        result = _execute_shard(task)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - forwarded, not hidden
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _degraded_engine(engine: str) -> str:
    """The next rung down :data:`DEGRADE_LADDER` (floor: last rung)."""
    if engine not in DEGRADE_LADDER:
        return DEGRADE_LADDER[-1]
    idx = DEGRADE_LADDER.index(engine)
    return DEGRADE_LADDER[min(idx + 1, len(DEGRADE_LADDER) - 1)]


@dataclasses.dataclass
class _Pending:
    """A shard attempt waiting to launch (after ``not_before``)."""

    shard: int
    attempt: int
    engine: str
    not_before: float


@dataclasses.dataclass
class _Slot:
    """A shard attempt currently running in a child process."""

    shard: int
    attempt: int
    engine: str
    proc: Any
    conn: Any
    deadline: Optional[float]


def run_supervised(
    spec: BatchSpec,
    n_runs: int,
    max_steps: int,
    workers: int,
    shard_size: Optional[int] = None,
    journal_path: Optional[str] = None,
    telemetry_path: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    mp_context: str = "spawn",
    store=None,
    policy: Optional[SupervisorPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
):
    """Execute a sharded batch under shard-level supervision.

    Drop-in for :func:`repro.parallel.engine.run_parallel` — same
    parameters, same deterministic merge, same bit-identical result —
    plus ``policy`` (see :class:`SupervisorPolicy`) and ``fault_plan``
    (test-only injection, :mod:`repro.faults`).  The returned
    ``BatchStats`` additionally carries a :class:`FaultReport` on
    ``.faults``; when shards were quarantined, ``stats.runs`` simply
    omits their index ranges and the report names them.

    Unlike the plain engine, *every* shard runs in its own child
    process even at ``workers=1`` — crash isolation needs the process
    boundary.  With a ``store``, each shard commits the moment it
    finishes, and damaged committed shards found on resume are healed
    (renamed ``*.corrupt``) and recomputed instead of raising.
    """
    import multiprocessing

    from repro.sim.runner import BatchStats

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    policy = policy or SupervisorPolicy()
    _check_picklable(spec)
    # Pre-import the simulation stack: per-shard children are forked
    # fresh for every attempt, so without a warm parent each one would
    # pay the factories' lazy first-call imports (~100ms/shard).
    _warm_imports()

    shards = plan_shards(n_runs, workers, shard_size)
    with_metrics = registry is not None
    report = FaultReport()

    # -- spec hash / store preamble (healing resume) -------------------
    run_spec = None
    spec_hash = None
    store_stats = None
    need_hash = store is not None or (
        fault_plan is not None and fault_plan.spec_hash is not None)
    if need_hash:
        from repro.spec import ObsOptions, RunSpec

        run_spec = RunSpec.from_batch(
            spec, max_steps=max_steps,
            obs=ObsOptions(metrics=with_metrics,
                           journal=journal_path is not None))
        spec_hash = run_spec.spec_hash()

    plan = fault_plan if (fault_plan is not None
                          and fault_plan.applies_to(spec_hash)) else None

    cached: Dict[int, Any] = {}
    if store is not None:
        from repro.store import StoreStats

        store_stats = StoreStats(spec_hash=spec_hash)
        healed_before = len(store.healed)
        for k, (start, stop) in enumerate(shards):
            payload = store.load_shard(spec_hash, spec.seed, start, stop,
                                       heal=True)
            if payload is not None:
                cached[k] = payload
                store_stats.hits += 1
                store_stats.runs_from_cache += stop - start
            else:
                store_stats.misses += 1
                store_stats.runs_executed += stop - start
        for path in store.healed[healed_before:]:
            report.healed.append(path)
            report.events.append(FaultEvent(
                shard=-1, attempt=0, kind="healed",
                engine=spec.resolved_engine, action="healed",
                detail=f"damaged shard file quarantined as "
                       f"{path}.corrupt; recomputing"))

    ctx = multiprocessing.get_context(mp_context)
    telemetry_fh = open(telemetry_path, "w") \
        if telemetry_path is not None else None
    manager = None
    beats = None
    if telemetry_fh is not None:
        # Heartbeats ride a manager queue (like the plain engine): the
        # proxy's put is an RPC into the manager process, so a child
        # killed mid-beat drops a connection, never corrupts shared
        # state.  Fault records are appended by the parent itself.
        manager = ctx.Manager()
        beats = manager.Queue()

    def _telemetry_append(d: Dict[str, Any]) -> None:
        if telemetry_fh is not None:
            telemetry_fh.write(json.dumps(d, sort_keys=True) + "\n")
            telemetry_fh.flush()

    def _drain_beats() -> None:
        if beats is None:
            return
        while True:
            try:
                _telemetry_append(beats.get_nowait())
            except queue_module.Empty:
                return
            except Exception:
                return  # queue torn down mid-drain; telemetry best-effort

    def _record_fault(shard: int, attempt: int, kind: str, engine: str,
                      action: str, detail: str) -> None:
        report.events.append(FaultEvent(
            shard=shard, attempt=attempt, kind=kind, engine=engine,
            action=action, detail=detail))
        _telemetry_append({"kind": "fault", "shard": shard,
                           "attempt": attempt, "fault": kind,
                           "engine": engine, "action": action,
                           "detail": detail})

    def _make_task(shard: int, engine: str) -> ShardTask:
        start, stop = shards[shard]
        task_spec = spec
        if engine != spec.resolved_engine:
            # Degraded attempt: rebuild the spec on the lower rung.
            # The shard still commits under the ORIGINAL run_spec —
            # sound because the engines are verified bit-identical.
            task_spec = dataclasses.replace(spec, engine=engine,
                                            fast=None)
        return ShardTask(
            spec=task_spec, start=start, stop=stop, max_steps=max_steps,
            with_metrics=with_metrics,
            journal_path=(shard_journal_path(journal_path, shard)
                          if journal_path is not None else None),
            shard_index=shard, telemetry_queue=beats)

    def _launch(p: _Pending) -> _Slot:
        task = _make_task(p.shard, p.engine)
        fault = plan.worker_action(p.shard, p.attempt) if plan else None
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_supervised_shard,
                           args=(task, fault, child_conn), daemon=True)
        proc.start()
        child_conn.close()
        now = time.monotonic()
        deadline = (now + policy.shard_timeout
                    if policy.shard_timeout is not None else None)
        return _Slot(shard=p.shard, attempt=p.attempt, engine=p.engine,
                     proc=proc, conn=parent_conn, deadline=deadline)

    pending: List[_Pending] = [
        _Pending(shard=k, attempt=0, engine=spec.resolved_engine,
                 not_before=0.0)
        for k in range(len(shards)) if k not in cached
    ]
    running: List[_Slot] = []
    completed: Dict[int, ShardResult] = {}
    quarantined: Dict[int, Tuple[int, int]] = {}

    def _handle_fault(slot_shard: int, attempt: int, engine: str,
                      kind: str, detail: str) -> None:
        if policy.on_fault == "fail":
            _record_fault(slot_shard, attempt, kind, engine, "fail",
                          detail)
            raise SupervisorError(
                f"shard {slot_shard} (runs "
                f"[{shards[slot_shard][0]}, {shards[slot_shard][1]})) "
                f"attempt {attempt} on engine {engine!r} faulted: "
                f"{kind}: {detail} [on_fault='fail'; use retry/"
                f"degrade/quarantine to continue past faults]")
        retryable = policy.on_fault in ("retry", "degrade")
        if not retryable or attempt >= policy.max_retries:
            quarantined[slot_shard] = shards[slot_shard]
            _record_fault(slot_shard, attempt, kind, engine,
                          "quarantine", detail)
            return
        next_engine = (_degraded_engine(engine)
                       if policy.on_fault == "degrade" else engine)
        delay = policy.backoff(attempt + 1)
        pending.append(_Pending(
            shard=slot_shard, attempt=attempt + 1, engine=next_engine,
            not_before=time.monotonic() + delay))
        action = ("retry" if next_engine == engine
                  else f"retry@{next_engine}")
        _record_fault(slot_shard, attempt, kind, engine, action,
                      f"{detail}; backoff {delay:.3f}s")

    def _handle_success(slot: _Slot, result: ShardResult) -> None:
        action = plan.store_action(slot.shard, slot.attempt) \
            if plan else None
        if store is not None:
            task = _make_task(slot.shard, slot.engine)
            if action is not None and action.kind == "commit-fail":
                # Work done, fact lost: the commit "fsync failed", so
                # the result is discarded and the shard re-executes —
                # the strictest reading of a failed durable write.
                _handle_fault(slot.shard, slot.attempt, slot.engine,
                              "commit-fail",
                              "injected commit failure (fsync)")
                return
            path = store.commit_shard(run_spec, spec.seed,
                                      _shard_payload(task, result))
            if action is not None and action.kind == "corrupt":
                # At-rest damage after a successful commit: the sweep
                # in flight is unaffected; the NEXT resume detects and
                # heals it.
                corrupt_file(path, action.mode)
                _record_fault(slot.shard, slot.attempt, "corrupt",
                              slot.engine, "damaged",
                              f"injected {action.mode} damage to "
                              f"{path}")
        completed[slot.shard] = result

    def _reap(slot: _Slot) -> bool:
        """Check one running slot; True when it left the running set."""
        if slot.conn.poll(0):
            # Either a report or EOF (``poll`` answers True for both,
            # and EOF stays True forever — only ``recv`` can tell).
            try:
                msg = slot.conn.recv()
            except EOFError:
                msg = None
            slot.proc.join()
            slot.conn.close()
            if msg is None:
                # EOF without a report: the child died before sending
                # (os._exit, OOM kill, segfault).
                _handle_fault(slot.shard, slot.attempt, slot.engine,
                              "crash",
                              f"worker exited with code "
                              f"{slot.proc.exitcode} before reporting")
            elif msg[0] == "ok":
                _handle_success(slot, msg[1])
            else:
                _handle_fault(slot.shard, slot.attempt, slot.engine,
                              "exception", msg[1])
            return True
        now = time.monotonic()
        if slot.deadline is not None and now > slot.deadline \
                and slot.proc.is_alive():
            slot.proc.kill()
            slot.proc.join()
            slot.conn.close()
            _handle_fault(slot.shard, slot.attempt, slot.engine,
                          "timeout",
                          f"exceeded shard_timeout="
                          f"{policy.shard_timeout}s; killed")
            return True
        if not slot.proc.is_alive():
            # Process gone but no pipe data yet: give the report (or
            # the EOF) a beat to surface, then take it next pass.
            if slot.conn.poll(0.1):
                return False
            slot.proc.join()
            slot.conn.close()
            _handle_fault(slot.shard, slot.attempt, slot.engine,
                          "crash",
                          f"worker exited with code "
                          f"{slot.proc.exitcode} and its pipe went "
                          f"silent")
            return True
        return False

    try:
        while pending or running:
            now = time.monotonic()
            i = 0
            while len(running) < workers and i < len(pending):
                if pending[i].not_before <= now:
                    running.append(_launch(pending.pop(i)))
                else:
                    i += 1
            _drain_beats()
            progressed = False
            for slot in list(running):
                if _reap(slot):
                    running.remove(slot)
                    progressed = True
            if not progressed and (running or pending):
                time.sleep(_POLL_S)
        _drain_beats()
    finally:
        for slot in running:
            if slot.proc.is_alive():
                slot.proc.kill()
            slot.proc.join()
            slot.conn.close()
        if manager is not None:
            manager.shutdown()
        if telemetry_fh is not None:
            telemetry_fh.close()

    report.quarantined = sorted(quarantined.values())

    # -- deterministic merge (identical to the plain engine, minus the
    # quarantined shards) ----------------------------------------------
    results: List[ShardResult] = []
    journal_parts: List[str] = []
    for k, (start, stop) in enumerate(shards):
        if k in quarantined:
            # Remove any partial journal litter the failed attempts
            # left so a later sweep cannot trip over it.
            if journal_path is not None:
                part = shard_journal_path(journal_path, k)
                for stray in (part, part + ".tmp"):
                    if os.path.exists(stray):
                        os.remove(stray)
            continue
        payload = cached.get(k)
        if payload is not None:
            results.append(ShardResult(
                start=start, stop=stop, runs=payload.runs,
                metrics=payload.metrics,
                journal_events=payload.journal_events))
            if journal_path is not None:
                with open(shard_journal_path(journal_path, k),
                          "wb") as fh:
                    fh.write(payload.journal_bytes)
        else:
            results.append(completed[k])
        if journal_path is not None:
            journal_parts.append(shard_journal_path(journal_path, k))

    runs = [r for shard in results for r in shard.runs]
    if with_metrics:
        for shard in results:
            registry.merge(shard.metrics)

    journal_events: Optional[int] = None
    if journal_path is not None and journal_parts:
        journal_events = concatenate_journals(journal_parts, journal_path)
        for part in journal_parts:
            os.remove(part)

    return BatchStats(
        runs=runs,
        max_steps=max_steps,
        metrics=registry,
        journal_path=journal_path,
        journal_events=journal_events,
        store=store_stats,
        faults=report,
    )

"""Sharded BFS frontier for the fingerprinted checker.

One level of the level-synchronous search in
:func:`repro.checker.statespace.explore_fast` is an embarrassingly
parallel map: every frontier configuration can be expanded
independently, and only the visited-set merge needs coordination.  This
module fans a level across a ``spawn`` process pool (the same engine
discipline as :mod:`repro.parallel.engine`: picklable specs checked at
submission, module-level worker functions, deterministic merge order)
and hands the shard results back to the parent, which owns the global
visited set.

Determinism contract (docs/CHECKER.md §5)
-----------------------------------------

Configurations cross the process boundary *decoded* — as state/value
object tuples, never as interned integer ids — because each worker
interns into its own :class:`~repro.ir.lower.CompiledProtocol` and two
workers that discover states in different orders assign different ids
to the same state.  Fingerprints are content-derived
(:mod:`repro.checker.fingerprint`), so a worker's fingerprint of a
configuration equals the parent's and every other worker's.  The parent
merges shard results *in shard order* (``Pool.map`` preserves task
order), so for a non-violating search the visited set — and therefore
the report — is identical at any worker count, including ``workers=1``
serial.  On a violating search the first violation in shard order wins,
which is deterministic for a fixed worker count but may differ from the
serial engine's first-in-BFS-order violation.

``spill_dir`` routes each shard's item payload through a pickle file
instead of the task pipe — the disk-backed variant for levels too
large to hold twice in memory.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

#: A shard below this many items is not worth a task round-trip.
MIN_ITEMS_PER_SHARD = 64

#: Tasks per worker per level — oversharding evens out load imbalance
#: between frontier regions of different branching factor.
OVERSHARD = 4


@dataclasses.dataclass(frozen=True)
class FrontierSpec:
    """Everything a worker needs to rebuild the parent's engine.

    ``factory`` is a picklable protocol factory (e.g.
    :class:`repro.parallel.tasks.ProtocolSpec`); the reduction flags
    are the parent's *resolved* settings, so the worker's engine —
    rebuilt independently — applies the same canonicalization and
    pruning and produces content-identical fingerprints.
    """

    factory: Callable[[], Any]
    inputs: Tuple[Hashable, ...]
    memory: str
    exact: bool
    symmetry: bool
    por: bool
    fingerprint_seed: int


@dataclasses.dataclass(frozen=True)
class FrontierShardTask:
    """One shard of one BFS level, in decoded (picklable) form."""

    shard: int
    depth: int
    items: Optional[Tuple[Tuple, ...]]
    path: Optional[str] = None  # spill file holding ``items`` instead


@dataclasses.dataclass
class FrontierShardResult:
    """A worker's expansion of one shard.

    ``successors`` entries are ``(states, reg_values, mem, mask, fp)``
    where ``fp`` is the content-derived fingerprint (``None`` in exact
    mode — the parent keys exact sets with its own packed vectors);
    ``violations`` are decoded ``(message, states, regs, mem)`` records.
    """

    shard: int
    edges: int
    pruned: int
    successors: List[Tuple]
    violations: List[Tuple]


_WORKER_ENGINE = None
_WORKER_SPEC: Optional[FrontierSpec] = None


def _engine_from_spec(spec: FrontierSpec):
    from repro.checker.statespace import StateSpaceEngine

    return StateSpaceEngine(
        spec.factory(), spec.inputs, spec.memory, exact=spec.exact,
        symmetry=spec.symmetry, por=spec.por,
        fingerprint_seed=spec.fingerprint_seed)


def _init_frontier_worker(spec: FrontierSpec) -> None:
    """Pool initializer: build the shard engine once per worker."""
    global _WORKER_ENGINE, _WORKER_SPEC
    _WORKER_ENGINE = _engine_from_spec(spec)
    _WORKER_SPEC = spec


def _expand_frontier_shard(task: FrontierShardTask) -> FrontierShardResult:
    """Expand one shard against a worker-local (empty) visited set.

    Local dedup only trims the transport volume; the authoritative
    dedup — against states visited at *any* level by *any* shard — is
    the parent merge.  Module-level so it pickles under ``spawn``.
    """
    engine = _WORKER_ENGINE
    assert engine is not None, "frontier worker used without initializer"
    items = task.items
    if task.path is not None:
        with open(task.path, "rb") as fh:
            items = pickle.load(fh)
    packed = [engine.encode_item(item) for item in items]
    visited: Any = {} if engine.por else set()
    next_items: List[Tuple] = []
    edges, pruned, violations, _ = engine.expand_level(
        packed, visited, next_items, task.depth, None)
    fp_mode = not engine.exact
    successors = [
        engine.decode_item(item) + ((item[3] if fp_mode else None),)
        for item in next_items
    ]
    return FrontierShardResult(task.shard, edges, pruned,
                               successors, violations)


class FrontierPool:
    """A persistent worker pool expanding BFS levels for one search.

    Mirrors :meth:`repro.checker.statespace.StateSpaceEngine.
    expand_level`'s contract so the serial and sharded paths are
    interchangeable inside ``explore_fast``; the parent keeps sole
    ownership of the global visited set and applies shard results in
    shard order.
    """

    def __init__(self, engine, workers: int,
                 spill_dir: Optional[str] = None,
                 protocol_factory: Optional[Callable[[], Any]] = None,
                 mp_context: str = "spawn") -> None:
        import multiprocessing

        factory = protocol_factory
        if factory is None:
            factory = _ConstFactory(engine.protocol)
        spec = FrontierSpec(
            factory=factory,
            inputs=engine.inputs,
            memory=engine.spec.name,
            exact=engine.exact,
            symmetry=engine.group is not None,
            por=engine.por,
            fingerprint_seed=engine.fingerprint_seed,
        )
        try:
            pickle.dumps(spec)
        except Exception as exc:
            raise ValueError(
                "frontier workers need a picklable protocol factory — "
                "pass protocol_factory= (e.g. repro.parallel.tasks."
                f"ProtocolSpec) [pickle said: {exc}]") from exc
        self.engine = engine
        self.workers = workers
        self.spill_dir = spill_dir
        self._spill_seq = 0
        ctx = multiprocessing.get_context(mp_context)
        self._pool = ctx.Pool(processes=workers,
                              initializer=_init_frontier_worker,
                              initargs=(spec,))

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def _make_tasks(self, items: Sequence[Tuple],
                    depth: int) -> Tuple[List[FrontierShardTask], List[str]]:
        decoded = [self.engine.decode_item(item) for item in items]
        n_shards = max(1, min(self.workers * OVERSHARD,
                              len(decoded) // MIN_ITEMS_PER_SHARD or 1))
        chunk = (len(decoded) + n_shards - 1) // n_shards
        tasks: List[FrontierShardTask] = []
        spill_paths: List[str] = []
        for shard, start in enumerate(range(0, len(decoded), chunk)):
            payload = tuple(decoded[start:start + chunk])
            if self.spill_dir is not None:
                self._spill_seq += 1
                path = os.path.join(
                    self.spill_dir,
                    f"frontier-{os.getpid()}-d{depth}-"
                    f"{self._spill_seq}.pkl")
                with open(path, "wb") as fh:
                    pickle.dump(payload, fh)
                spill_paths.append(path)
                tasks.append(FrontierShardTask(shard, depth, None, path))
            else:
                tasks.append(FrontierShardTask(shard, depth, payload))
        return tasks, spill_paths

    def expand_level(self, items: Sequence[Tuple], visited,
                     next_items: List[Tuple], depth: int,
                     max_states: Optional[int]) -> Tuple:
        """Expand ``items`` via the pool; merge results in shard order.

        Same return shape as the engine's ``expand_level``; a state-
        budget refusal reports ``stopped = len(items)`` (the whole level
        was expanded, but not every successor could be admitted).
        """
        engine = self.engine
        tasks, spill_paths = self._make_tasks(items, depth)
        try:
            results = self._pool.map(_expand_frontier_shard, tasks)
        finally:
            for path in spill_paths:
                try:
                    os.remove(path)
                except OSError:
                    pass
        edges = 0
        pruned = 0
        violations: List[Tuple] = []
        por = engine.por
        exact = engine.exact
        for result in results:
            edges += result.edges
            pruned += result.pruned
            if result.violations and not violations:
                violations.extend(result.violations)
            for states, regs, mem, mask, fp in result.successors:
                if not exact and not por and fp in visited:
                    continue
                packed = engine.encode_item((states, regs, mem, mask))
                key = packed[3]
                if por:
                    old = visited.get(key)
                    if old is None:
                        if max_states is not None \
                                and len(visited) >= max_states:
                            return edges, pruned, violations, len(items)
                        visited[key] = mask
                        next_items.append(packed)
                    elif old & mask != old:
                        merged = old & mask
                        visited[key] = merged
                        next_items.append(packed[:4] + (merged,))
                else:
                    if key in visited:
                        continue
                    if max_states is not None \
                            and len(visited) >= max_states:
                        return edges, pruned, violations, len(items)
                    visited.add(key)
                    next_items.append(packed)
        return edges, pruned, violations, None


@dataclasses.dataclass(frozen=True)
class _ConstFactory:
    """Wrap an already-built protocol as a factory (pickled by value)."""

    protocol: Any

    def __call__(self):
        return self.protocol

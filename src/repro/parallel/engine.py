"""Process-pool execution engine for Monte-Carlo batches.

Runs in a batch are independent coin-flip experiments: every stochastic
stream of run ``i`` derives from ``derive_seed(root_seed, "run", i)``
(see :meth:`repro.sim.runner.ExperimentRunner.run_one`), so a run's
outcome depends only on the root seed and its index — never on which
process executes it or in what order.  That makes batches trivially
shardable: split the index range ``[0, n_runs)`` into contiguous
shards, execute each shard in a worker process, and merge the shards
back in index order.  The merged result is bit-identical to a serial
run with the same root seed, at any worker count and any shard size.

Each worker observes its shard with its own
:class:`~repro.obs.metrics.MetricsRegistry` (and, when asked, its own
JSONL journal shard).  The merge step is deterministic:

* per-run :class:`~repro.sim.runner.RunStats` concatenate in shard
  order, which *is* global run order because shards are contiguous;
* shard registries fold together via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` in shard order
  (counters add, histograms union counts, gauges keep min/max unions
  and take the last shard's last value);
* journal shards concatenate via
  :func:`~repro.obs.journal.concatenate_journals`, keeping a single
  header line — byte-identical to the journal a serial run writes.

Task specs must pickle (the engine checks up front and raises a
descriptive error otherwise): use module-level factory functions or the
spec classes in :mod:`repro.parallel.tasks`.  The default start method
is ``spawn`` — the only method that is safe on every platform — so
workers re-import the library rather than inheriting interpreter state.
On POSIX hosts ``mp_context="fork"`` skips the per-worker interpreter
start-up and is measurably faster for short batches.
"""

from __future__ import annotations

import dataclasses
import json
import math
import multiprocessing
import os
import pickle
import queue as queue_module
from typing import Any, Callable, Hashable, List, Optional, Sequence, Tuple

from repro.engines import SIM, default_engine, resolve_sim_engine
from repro.obs.journal import JsonlJournal, concatenate_journals
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import TelemetryEmitter, file_sink
from repro.sim.memory import ATOMIC, MemorySpec


@dataclasses.dataclass(frozen=True)
class BatchSpec:
    """Everything a worker needs to rebuild the experiment.

    The three factories follow the :class:`ExperimentRunner` contract
    (see :mod:`repro.sim.runner`) and must be picklable.
    """

    protocol_factory: Callable
    scheduler_factory: Callable
    inputs_factory: Callable
    seed: int
    strict: bool = False
    #: Deprecated boolean alias for ``engine`` (``True`` → ``"fast"``,
    #: ``False`` → ``"reference"``); passing it warns at construction.
    fast: Optional[bool] = None
    #: Register semantics of every run (picklable; see repro.sim.memory).
    memory: MemorySpec = ATOMIC
    #: Execution backend name, resolved through the engine registry
    #: (:mod:`repro.engines`); ``None`` means the registry default
    #: (``"fast"``).  Workers rebuild their runner with it, so a vector
    #: batch shards into per-worker lockstep mega-batches (repro.ir).
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        # Validate (and warn for the deprecated alias) once, in the
        # submitting process; workers rebuild specs via pickle, which
        # skips __init__, so neither fires again per shard.
        resolve_sim_engine(self.engine, self.fast, caller="BatchSpec")

    @property
    def resolved_engine(self) -> str:
        """The effective engine name (alias applied, default filled)."""
        if self.engine is not None:
            return self.engine
        if self.fast is not None:
            return "fast" if self.fast else "reference"
        return default_engine(SIM).name


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """One contiguous slice ``[start, stop)`` of a batch's run indices."""

    spec: BatchSpec
    start: int
    stop: int
    max_steps: int
    with_metrics: bool
    journal_path: Optional[str] = None
    #: Position of this shard in the batch plan (heartbeat identity).
    shard_index: int = 0
    #: Anything with a ``put(dict)`` method — a ``multiprocessing``
    #: manager queue proxy in sharded sweeps (proxies pickle), or the
    #: in-process :class:`_FileChannel` — receiving live heartbeat
    #: dicts (see :mod:`repro.obs.telemetry`).  ``None`` disables
    #: telemetry for the shard.
    telemetry_queue: Optional[Any] = None


@dataclasses.dataclass
class ShardResult:
    """What a worker sends back: per-run stats plus shard aggregates."""

    start: int
    stop: int
    runs: List
    metrics: Optional[MetricsRegistry]
    journal_events: int = 0


def plan_shards(n_runs: int, workers: int,
                shard_size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Partition ``[0, n_runs)`` into contiguous ``(start, stop)`` shards.

    The default shard size is ``ceil(n_runs / workers)`` — one shard
    per worker, the lowest-overhead choice for uniform runs.  Pass a
    smaller ``shard_size`` when per-run cost varies (adversarial
    schedulers, mixed inputs) so the pool can load-balance; results are
    identical either way.
    """
    if n_runs < 0:
        raise ValueError(f"n_runs must be >= 0, got {n_runs}")
    if shard_size is None:
        shard_size = max(1, math.ceil(n_runs / max(1, workers)))
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [(start, min(start + shard_size, n_runs))
            for start in range(0, n_runs, shard_size)]


def shard_journal_path(journal_path: str, shard_index: int) -> str:
    """The temporary path shard ``shard_index`` streams its journal to."""
    return f"{journal_path}.shard{shard_index:04d}"


def _execute_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: run one shard with its own sinks.

    Module-level (not a closure) so it pickles under the ``spawn``
    start method.  Reuses :class:`ExperimentRunner` — the exact code
    path of a serial batch — with the shard's private registry and
    journal attached.
    """
    from repro.sim.runner import ExperimentRunner

    registry = MetricsRegistry() if task.with_metrics else None
    journal = (JsonlJournal(task.journal_path, memory=task.spec.memory.name)
               if task.journal_path is not None else None)
    sinks = tuple(s for s in (registry, journal) if s is not None)
    runner = ExperimentRunner(
        protocol_factory=task.spec.protocol_factory,
        scheduler_factory=task.spec.scheduler_factory,
        inputs_factory=task.spec.inputs_factory,
        seed=task.spec.seed,
        strict=task.spec.strict,
        sinks=sinks,
        memory=task.spec.memory,
        engine=task.spec.resolved_engine,
    )
    emitter = None
    if task.telemetry_queue is not None:
        emitter = TelemetryEmitter(task.shard_index, task.stop - task.start,
                                   task.telemetry_queue.put)
    runs = runner.run_range(task.start, task.stop, task.max_steps,
                            emitter=emitter)
    if emitter is not None:
        emitter.finish()
    events = 0
    if journal is not None:
        events = journal.events_written
        journal.close()
    return ShardResult(start=task.start, stop=task.stop, runs=runs,
                       metrics=registry, journal_events=events)


class _FileChannel:
    """In-process stand-in for the manager queue: ``put`` appends JSONL.

    Used on the no-pool path (one shard, or ``workers == 1``) so the
    shard code is identical either way — it just calls ``put``.
    """

    def __init__(self, fh) -> None:
        self._sink = file_sink(fh)

    def put(self, d) -> None:
        self._sink(d)


def _drain_heartbeats(beats, fh, async_result) -> None:
    """Stream heartbeat dicts off the queue into the telemetry file.

    Runs in the parent while the pool works; returns once the pool is
    done *and* the queue is empty, so the file always ends with every
    shard's final ``done`` beat.  The final drain happens strictly
    after ``async_result`` completes: a worker's ``put`` is a
    synchronous manager RPC that returns before its task does, so once
    every task has returned, every beat is already in the queue — a
    blocking-with-timeout drain then empties it without racing the
    manager, where the old ``get_nowait`` sweep could drop a
    final-shard beat still crossing the proxy.
    """
    def _append(d) -> None:
        fh.write(json.dumps(d, sort_keys=True) + "\n")
        fh.flush()

    while not async_result.ready():
        try:
            _append(beats.get(timeout=0.05))
        except queue_module.Empty:
            pass
    async_result.wait()
    while True:
        try:
            _append(beats.get(timeout=0.2))
        except queue_module.Empty:
            break


def _check_picklable(spec: BatchSpec) -> None:
    # Only genuine pickling failures get the "use the spec classes"
    # diagnosis; anything else a factory's __reduce__/__getstate__
    # raises is a real bug in that factory and propagates unchanged
    # (with its original traceback), not dressed up as a pickle
    # problem.
    try:
        pickle.dumps(spec)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ValueError(
            "parallel batches need picklable factories (they cross a "
            "process boundary): use module-level functions or the spec "
            "classes in repro.parallel.tasks (ProtocolSpec, "
            "SchedulerSpec, ConstantInputs) instead of lambdas or "
            f"closures [pickle said: {exc}]"
        ) from exc


def _warm_imports() -> None:
    """Pre-import the simulation stack in the parent process.

    The factory specs in :mod:`repro.parallel.tasks` import lazily on
    first call, so a worker's first shard pays ~100ms of imports the
    parent never triggered.  Under the ``fork`` start method children
    inherit the parent's loaded modules — importing here once makes
    every forked worker (pool worker or per-shard supervised child)
    start warm.  Harmless under ``spawn``, where children re-import
    regardless.
    """
    import repro.core  # noqa: F401
    import repro.sched  # noqa: F401
    import repro.sim.runner  # noqa: F401


def _shard_payload(task: ShardTask, result: ShardResult):
    """Package one executed shard for the store (journal bytes inline)."""
    from repro.store import ShardPayload

    journal_bytes = None
    if task.journal_path is not None:
        with open(task.journal_path, "rb") as fh:
            journal_bytes = fh.read()
    return ShardPayload(
        start=result.start, stop=result.stop, runs=result.runs,
        metrics=result.metrics, journal_bytes=journal_bytes,
        journal_events=result.journal_events)


def run_parallel(
    spec: BatchSpec,
    n_runs: int,
    max_steps: int,
    workers: int,
    shard_size: Optional[int] = None,
    journal_path: Optional[str] = None,
    telemetry_path: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    mp_context: str = "spawn",
    store=None,
):
    """Execute a sharded batch and merge it back into one ``BatchStats``.

    Parameters
    ----------
    registry:
        The caller's batch-wide :class:`MetricsRegistry`, if it has
        one.  Shard registries are folded into it in shard order and it
        becomes ``BatchStats.metrics`` — mirroring the serial contract
        where the runner's attached registry accumulates the batch.
        When ``None``, no metrics are collected (again matching a
        serial runner with no registry attached).
    journal_path:
        Final path of the batch journal.  Each shard streams to
        ``<journal_path>.shard<k>``; the shards are concatenated (one
        header, shard order) into ``journal_path`` and removed.
    telemetry_path:
        Live-progress JSONL file (see :mod:`repro.obs.telemetry`).
        Workers push per-shard heartbeats over a manager queue; the
        parent appends them here while the pool runs, so ``repro top
        <path>`` follows the sweep from another terminal.  Heartbeats
        carry wall-clock rates — the file differs between repeats of
        the same seeded sweep even though the returned stats do not.
    mp_context:
        ``multiprocessing`` start method.  ``"spawn"`` (default) works
        everywhere; ``"fork"`` is faster where available.
    store:
        Optional :class:`~repro.store.RunStore`.  Shards already
        committed under this sweep's content address ``(spec_hash,
        root_seed, index_range)`` are loaded instead of executed;
        every freshly executed shard is committed (atomic tmp+rename)
        as soon as it finishes — in execution order on the in-process
        path, in shard order after a pool drains — so an interrupted
        sweep resumes from its last committed shard.  The returned
        stats carry a :class:`~repro.store.StoreStats` accounting.

    Returns a :class:`~repro.sim.runner.BatchStats` bit-identical to
    the serial equivalent: same ``runs`` list, same merged metrics
    snapshot, same journal bytes.
    """
    from repro.sim.runner import BatchStats

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    _check_picklable(spec)
    _warm_imports()

    shards = plan_shards(n_runs, workers, shard_size)
    with_metrics = registry is not None

    cached: dict = {}
    run_spec = None
    store_stats = None
    if store is not None:
        from repro.spec import ObsOptions, RunSpec
        from repro.store import StoreStats

        run_spec = RunSpec.from_batch(
            spec, max_steps=max_steps,
            obs=ObsOptions(metrics=with_metrics,
                           journal=journal_path is not None))
        spec_hash = run_spec.spec_hash()
        store_stats = StoreStats(spec_hash=spec_hash)
        for k, (start, stop) in enumerate(shards):
            # heal=True: a committed shard damaged at rest (failed
            # disk, torn copy) is quarantined as *.corrupt and simply
            # re-executed — a fact is always recomputable.
            payload = store.load_shard(spec_hash, spec.seed, start, stop,
                                       heal=True)
            if payload is not None:
                cached[k] = payload
                store_stats.hits += 1
                store_stats.runs_from_cache += stop - start
            else:
                store_stats.misses += 1
                store_stats.runs_executed += stop - start

    tasks = [
        ShardTask(
            spec=spec,
            start=start,
            stop=stop,
            max_steps=max_steps,
            with_metrics=with_metrics,
            journal_path=(shard_journal_path(journal_path, k)
                          if journal_path is not None else None),
            shard_index=k,
        )
        for k, (start, stop) in enumerate(shards)
        if k not in cached
    ]

    def _commit(task: ShardTask, result: ShardResult) -> None:
        store.commit_shard(run_spec, spec.seed,
                           _shard_payload(task, result))

    telemetry_fh = open(telemetry_path, "w") \
        if telemetry_path is not None else None
    try:
        if not tasks:
            results: List[ShardResult] = []
        elif len(tasks) == 1 or workers == 1:
            # Nothing to parallelize; run in-process, same code path.
            # With a store, each shard commits the moment it finishes
            # (that is what makes a killed sweep resumable mid-batch).
            if telemetry_fh is not None:
                channel = _FileChannel(telemetry_fh)
                tasks = [dataclasses.replace(t, telemetry_queue=channel)
                         for t in tasks]
            results = []
            for t in tasks:
                r = _execute_shard(t)
                if store is not None:
                    _commit(t, r)
                results.append(r)
        else:
            ctx = multiprocessing.get_context(mp_context)
            if telemetry_fh is None:
                with ctx.Pool(processes=min(workers, len(tasks))) as pool:
                    results = pool.map(_execute_shard, tasks)
            else:
                # Heartbeats cross process boundaries over a manager
                # queue; the parent streams them to the telemetry file
                # while the pool works.
                with ctx.Manager() as manager:
                    beats = manager.Queue()
                    tasks = [dataclasses.replace(t, telemetry_queue=beats)
                             for t in tasks]
                    with ctx.Pool(
                            processes=min(workers, len(tasks))) as pool:
                        pending = pool.map_async(_execute_shard, tasks)
                        _drain_heartbeats(beats, telemetry_fh, pending)
                        results = pending.get()
            if store is not None:
                for t, r in zip(tasks, results):
                    _commit(t, r)
    finally:
        if telemetry_fh is not None:
            telemetry_fh.close()

    # Fold cached payloads back into the shard sequence, in shard
    # order, so the merge below cannot tell a loaded shard from an
    # executed one.
    if cached:
        executed = {r.start: r for r in results}
        results = []
        for k, (start, stop) in enumerate(shards):
            payload = cached.get(k)
            if payload is None:
                results.append(executed[start])
                continue
            results.append(ShardResult(
                start=start, stop=stop, runs=payload.runs,
                metrics=payload.metrics,
                journal_events=payload.journal_events))
            if journal_path is not None:
                # Re-materialize the shard's journal segment so the
                # stitch below is the one code path either way.
                with open(shard_journal_path(journal_path, k),
                          "wb") as fh:
                    fh.write(payload.journal_bytes)

    runs = [r for shard in results for r in shard.runs]
    if with_metrics:
        for shard in results:
            registry.merge(shard.metrics)

    journal_events: Optional[int] = None
    if journal_path is not None:
        parts = [shard_journal_path(journal_path, k)
                 for k in range(len(shards))]
        journal_events = concatenate_journals(parts, journal_path)
        for part in parts:
            os.remove(part)

    return BatchStats(
        runs=runs,
        max_steps=max_steps,
        metrics=registry,
        journal_path=journal_path,
        journal_events=journal_events,
        store=store_stats,
    )

"""Sharded Monte-Carlo batch execution across worker processes.

The paper's quantitative claims — Theorem 7's ≤ (1/4)^(k/2) tail, the
≤ 10 expected-steps corollary, Theorem 9's (3/4)^k num-depth envelope —
are estimated by Monte-Carlo batches, and resolving the deep tails
takes run counts that are slow in a single process.  Runs are
independent experiments keyed by ``derive_seed(root_seed, "run", i)``,
so they shard across processes with bit-identical results:

* :mod:`repro.parallel.engine` — :func:`run_parallel` splits the run
  index range into contiguous shards, executes each in a
  ``multiprocessing`` worker with its own metrics registry / journal
  shard, and deterministically merges everything back into one
  :class:`~repro.sim.runner.BatchStats`.
* :mod:`repro.parallel.supervisor` — :func:`run_supervised`, the
  fault-tolerant sibling: each shard in its own watched child process
  with deterministic bounded retries, engine degradation, and
  quarantine — same bit-identical merge, plus a structured
  :class:`FaultReport` (see ``docs/ROBUSTNESS.md``).
* :mod:`repro.parallel.tasks` — picklable factory specs
  (:class:`ProtocolSpec`, :class:`SchedulerSpec`,
  :class:`ConstantInputs`) so task descriptions survive the ``spawn``
  boundary.

Most callers never import this package directly: pass ``workers=N``
(and ``supervise=True``) to :meth:`ExperimentRunner.run_many` or
``--workers N`` / ``--supervised`` to ``repro report``.  See
``docs/EXPERIMENTS.md`` for the sharding contract and benchmark
results.
"""

from repro.parallel.engine import (
    BatchSpec,
    ShardResult,
    ShardTask,
    plan_shards,
    run_parallel,
    shard_journal_path,
)
from repro.parallel.supervisor import (
    DEGRADE_LADDER,
    FaultEvent,
    FaultReport,
    SupervisorError,
    SupervisorPolicy,
    run_supervised,
)
from repro.parallel.tasks import (
    PROTOCOL_NAMES,
    SCHEDULER_NAMES,
    ConstantInputs,
    ProtocolSpec,
    SchedulerSpec,
)

__all__ = [
    "BatchSpec",
    "ShardResult",
    "ShardTask",
    "plan_shards",
    "run_parallel",
    "shard_journal_path",
    "DEGRADE_LADDER",
    "FaultEvent",
    "FaultReport",
    "SupervisorError",
    "SupervisorPolicy",
    "run_supervised",
    "ConstantInputs",
    "ProtocolSpec",
    "SchedulerSpec",
    "PROTOCOL_NAMES",
    "SCHEDULER_NAMES",
]

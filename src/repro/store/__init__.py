"""Content-addressed, resumable on-disk run store.

Because every run is a pure function of ``(spec, root_seed,
run_index)`` (the determinism contract of :mod:`repro.parallel`), a
finished shard of a sweep is a *fact*: re-running it can only ever
reproduce the same bytes.  This store files those facts on disk, keyed
by content address, so

* an interrupted sweep **resumes** from its last committed shard —
  ``run_many(..., store=...)`` commits each finished shard and a re-run
  loads the committed ones instead of re-executing them;
* a repeated identical sweep is answered **entirely from cache**
  (zero kernel steps), bit-identical to the uninterrupted serial run —
  merged ``RunStats``, metrics snapshot, and journal bytes alike.

Layout
------

::

    <root>/
      store.json                          # format marker
      specs/<spec_hash>/
        spec.json                         # canonical RunSpec (pretty)
        seed-<root_seed>/
          shard-<start>-<stop>.pkl        # one committed shard

``spec_hash`` is :meth:`repro.spec.RunSpec.spec_hash` — SHA-256 of the
spec's canonical JSON — so the full key of a shard is
``(spec_hash, root_seed, index_range)``.  ``spec.json`` stores the
canonical form next to the opaque hash for humans and ``repro store
show``.

Crash safety
------------

Commits reuse the journal finalization idiom (PR 5,
:mod:`repro.obs.journal`): payloads stream to ``<path>.tmp`` and are
fsync'd, then atomically renamed over the final name.  A shard file
either exists whole or not at all; a crash mid-commit leaves only a
``.tmp`` that :meth:`RunStore.gc` sweeps and that loading never
consults.

GC contract
-----------

:meth:`RunStore.gc` always removes orphaned ``.tmp`` files (they are
never readable state).  Committed shards are removed only when the
caller names the spec hashes to *keep* — the store never ages out
facts on its own, because a content-addressed fact cannot go stale.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import pickle
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.spec import RunSpec

#: On-disk payload format; bump on incompatible ShardPayload changes.
STORE_FORMAT = 1

_MARKER = "store.json"
_SPECS = "specs"


class StoreError(ValueError):
    """A store operation that cannot be performed."""


@dataclasses.dataclass
class ShardPayload:
    """Everything one committed shard contributes to a merged batch.

    ``journal_bytes`` holds the shard's complete JSONL journal segment
    (header line included) when the sweep recorded one, so a cached
    shard re-enters :func:`repro.obs.journal.concatenate_journals`
    exactly like a freshly executed shard's file does.
    """

    start: int
    stop: int
    runs: List[Any]
    metrics: Optional[Any] = None
    journal_bytes: Optional[bytes] = None
    journal_events: int = 0


@dataclasses.dataclass
class StoreStats:
    """What the store contributed to one sweep (``BatchStats.store``)."""

    spec_hash: str = ""
    hits: int = 0
    misses: int = 0
    runs_from_cache: int = 0
    runs_executed: int = 0

    @property
    def fully_cached(self) -> bool:
        """True when the sweep executed zero kernel steps."""
        return self.misses == 0


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One spec's footprint in the store (``repro store ls`` row)."""

    spec_hash: str
    describe: str
    seeds: Tuple[int, ...]
    n_shards: int
    n_runs: int
    bytes: int


class RunStore:
    """The content-addressed shard store rooted at ``root``.

    ``on_commit`` is an optional hook called *after* each atomic shard
    commit with ``(spec_hash, root_seed, start, stop, path)``.  The
    resume test suite uses it as a fault injector — raising from the
    hook simulates a sweep killed between shard commits; everything
    committed before the fault stays durable and resumable.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.on_commit: Optional[Callable[[str, int, int, int, str],
                                          None]] = None
        os.makedirs(os.path.join(root, _SPECS), exist_ok=True)
        marker = os.path.join(root, _MARKER)
        if not os.path.exists(marker):
            tmp = marker + ".tmp"
            with open(tmp, "w") as fh:
                json.dump({"repro_store": STORE_FORMAT}, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, marker)
        else:
            with open(marker) as fh:
                doc = json.load(fh)
            if doc.get("repro_store") != STORE_FORMAT:
                raise StoreError(
                    f"{root} is a repro store of format "
                    f"{doc.get('repro_store')!r}; this build reads "
                    f"format {STORE_FORMAT}")

    # -- paths ---------------------------------------------------------

    def _spec_dir(self, spec_hash: str) -> str:
        return os.path.join(self.root, _SPECS, spec_hash)

    def shard_path(self, spec_hash: str, root_seed: int,
                   start: int, stop: int) -> str:
        """Where the shard ``[start, stop)`` of a sweep is filed."""
        return os.path.join(
            self._spec_dir(spec_hash), f"seed-{root_seed}",
            f"shard-{start:08d}-{stop:08d}.pkl")

    # -- read side -----------------------------------------------------

    def load_shard(self, spec_hash: str, root_seed: int,
                   start: int, stop: int) -> Optional[ShardPayload]:
        """The committed payload for the exact key, or ``None``.

        Only whole, format-matching files answer; a damaged file (which
        the atomic commit protocol never produces by itself) raises
        :class:`StoreError` rather than silently re-executing over it.
        """
        path = self.shard_path(spec_hash, root_seed, start, stop)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as fh:
                doc = pickle.load(fh)
        except Exception as exc:
            raise StoreError(
                f"unreadable shard {path}: {exc} (the store only "
                f"writes whole files; remove it to re-execute)"
            ) from exc
        if doc.get("format") != STORE_FORMAT:
            raise StoreError(
                f"shard {path} has format {doc.get('format')!r}; this "
                f"build reads format {STORE_FORMAT}")
        key = (doc.get("spec_hash"), doc.get("root_seed"),
               doc.get("start"), doc.get("stop"))
        if key != (spec_hash, root_seed, start, stop):
            raise StoreError(
                f"shard {path} is keyed {key}, not "
                f"{(spec_hash, root_seed, start, stop)}")
        return doc["payload"]

    # -- write side ----------------------------------------------------

    def commit_shard(self, spec: RunSpec, root_seed: int,
                     payload: ShardPayload) -> str:
        """Atomically commit one finished shard; returns its path.

        Uses the journal finalization idiom: stream to ``<path>.tmp``,
        flush + fsync, then ``os.replace`` onto the final name — the
        shard appears on disk whole or not at all.  The spec's
        ``spec.json`` is committed the same way, once, so every shard
        tree is self-describing.
        """
        spec_hash = spec.spec_hash()
        spec_dir = self._spec_dir(spec_hash)
        os.makedirs(os.path.join(spec_dir, f"seed-{root_seed}"),
                    exist_ok=True)
        spec_doc = os.path.join(spec_dir, "spec.json")
        if not os.path.exists(spec_doc):
            tmp = spec_doc + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(spec.to_canonical(), fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, spec_doc)
        path = self.shard_path(spec_hash, root_seed,
                               payload.start, payload.stop)
        doc = {
            "format": STORE_FORMAT,
            "spec_hash": spec_hash,
            "root_seed": root_seed,
            "start": payload.start,
            "stop": payload.stop,
            "payload": payload,
        }
        buf = io.BytesIO()
        pickle.dump(doc, buf, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(buf.getvalue())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        if self.on_commit is not None:
            self.on_commit(spec_hash, root_seed,
                           payload.start, payload.stop, path)
        return path

    # -- maintenance ---------------------------------------------------

    def _iter_spec_hashes(self) -> List[str]:
        specs = os.path.join(self.root, _SPECS)
        return sorted(
            d for d in os.listdir(specs)
            if os.path.isdir(os.path.join(specs, d)))

    def ls(self) -> List[StoreEntry]:
        """One :class:`StoreEntry` per stored spec, hash-sorted."""
        entries = []
        for spec_hash in self._iter_spec_hashes():
            spec_dir = self._spec_dir(spec_hash)
            describe = ""
            doc_path = os.path.join(spec_dir, "spec.json")
            if os.path.exists(doc_path):
                with open(doc_path) as fh:
                    doc = json.load(fh)
                describe = (
                    f"{doc['protocol']['name']}"
                    f"({doc['protocol']['n_processes']}) "
                    f"sched={doc['scheduler']['name']} "
                    f"mem={doc['memory']} engine={doc['engine']} "
                    f"max_steps={doc['budgets']['max_steps']}")
            seeds, n_shards, n_runs, size = [], 0, 0, 0
            for seed_dir in sorted(os.listdir(spec_dir)):
                if not seed_dir.startswith("seed-"):
                    continue
                seeds.append(int(seed_dir[len("seed-"):]))
                full = os.path.join(spec_dir, seed_dir)
                for shard in os.listdir(full):
                    if not (shard.startswith("shard-")
                            and shard.endswith(".pkl")):
                        continue
                    n_shards += 1
                    stem = shard[len("shard-"):-len(".pkl")]
                    start, stop = (int(p) for p in stem.split("-"))
                    n_runs += stop - start
                    size += os.path.getsize(os.path.join(full, shard))
            entries.append(StoreEntry(
                spec_hash=spec_hash, describe=describe,
                seeds=tuple(sorted(seeds)), n_shards=n_shards,
                n_runs=n_runs, bytes=size))
        return entries

    def show(self, spec_hash: str) -> Dict[str, Any]:
        """Canonical spec + per-seed shard ranges for one stored spec.

        Accepts a unique hash prefix (≥ 8 chars) like git does.
        """
        matches = [h for h in self._iter_spec_hashes()
                   if h.startswith(spec_hash)]
        if not matches:
            raise StoreError(f"no stored spec matches {spec_hash!r}")
        if len(matches) > 1:
            raise StoreError(
                f"{spec_hash!r} is ambiguous: "
                f"{', '.join(h[:12] for h in matches)}")
        spec_hash = matches[0]
        spec_dir = self._spec_dir(spec_hash)
        with open(os.path.join(spec_dir, "spec.json")) as fh:
            spec_doc = json.load(fh)
        seeds: Dict[int, List[Tuple[int, int]]] = {}
        for seed_dir in sorted(os.listdir(spec_dir)):
            if not seed_dir.startswith("seed-"):
                continue
            seed = int(seed_dir[len("seed-"):])
            ranges = []
            full = os.path.join(spec_dir, seed_dir)
            for shard in sorted(os.listdir(full)):
                if shard.startswith("shard-") and shard.endswith(".pkl"):
                    stem = shard[len("shard-"):-len(".pkl")]
                    start, stop = (int(p) for p in stem.split("-"))
                    ranges.append((start, stop))
            seeds[seed] = ranges
        return {"spec_hash": spec_hash, "spec": spec_doc, "seeds": seeds}

    def gc(self, keep: Optional[List[str]] = None,
           dry_run: bool = False) -> List[str]:
        """Sweep the store; returns the paths removed (or would-remove).

        Always removes orphaned ``.tmp`` files — a crashed writer's
        partial output, never readable state.  When ``keep`` is given
        (full hashes or unique prefixes), whole spec trees *not*
        matching any kept prefix are removed too; without ``keep``,
        committed data is never touched.
        """
        removed: List[str] = []

        def _rm(path: str) -> None:
            removed.append(path)
            if dry_run:
                return
            if os.path.isdir(path):
                for sub in sorted(
                        (os.path.join(dp, f)
                         for dp, _, fs in os.walk(path) for f in fs),
                        reverse=True):
                    os.remove(sub)
                for dp, dns, _ in sorted(os.walk(path), reverse=True):
                    for dn in dns:
                        os.rmdir(os.path.join(dp, dn))
                os.rmdir(path)
            else:
                os.remove(path)

        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".tmp"):
                    _rm(os.path.join(dirpath, name))
        if keep is not None:
            for spec_hash in self._iter_spec_hashes():
                if not any(spec_hash.startswith(k) for k in keep):
                    _rm(self._spec_dir(spec_hash))
        return removed

"""Content-addressed, resumable on-disk run store.

Because every run is a pure function of ``(spec, root_seed,
run_index)`` (the determinism contract of :mod:`repro.parallel`), a
finished shard of a sweep is a *fact*: re-running it can only ever
reproduce the same bytes.  This store files those facts on disk, keyed
by content address, so

* an interrupted sweep **resumes** from its last committed shard —
  ``run_many(..., store=...)`` commits each finished shard and a re-run
  loads the committed ones instead of re-executing them;
* a repeated identical sweep is answered **entirely from cache**
  (zero kernel steps), bit-identical to the uninterrupted serial run —
  merged ``RunStats``, metrics snapshot, and journal bytes alike.

Layout
------

::

    <root>/
      store.json                          # format marker
      specs/<spec_hash>/
        spec.json                         # canonical RunSpec (pretty)
        seed-<root_seed>/
          shard-<start>-<stop>.pkl        # one committed shard

``spec_hash`` is :meth:`repro.spec.RunSpec.spec_hash` — SHA-256 of the
spec's canonical JSON — so the full key of a shard is
``(spec_hash, root_seed, index_range)``.  ``spec.json`` stores the
canonical form next to the opaque hash for humans and ``repro store
show``.

Crash safety
------------

Commits reuse the journal finalization idiom (PR 5,
:mod:`repro.obs.journal`): payloads stream to ``<path>.tmp`` and are
fsync'd, then atomically renamed over the final name.  A shard file
either exists whole or not at all; a crash mid-commit leaves only a
``.tmp`` that :meth:`RunStore.gc` sweeps and that loading never
consults.

Self-healing (format 2)
-----------------------

Every committed shard carries a SHA-256 checksum over its pickled
payload, so at-rest damage (truncation, bit flips, torn writes from a
non-atomic copy) is *detected*, never silently deserialized.  By
default a damaged shard raises :class:`StoreError` — the conservative
contract for direct loads.  Resumable sweeps pass ``heal=True``:
the damaged file is renamed to ``<shard>.corrupt`` (kept for
forensics), recorded on :attr:`RunStore.healed`, and the load answers
``None`` so the supervisor simply re-executes the shard — a committed
fact is always recomputable because runs are pure functions of
``(root_seed, index)``.  ``repro store verify`` (:meth:`RunStore.verify`)
checksums every committed shard without loading payloads into a sweep.

GC contract
-----------

:meth:`RunStore.gc` always removes orphaned ``.tmp`` files and
quarantined ``.corrupt`` files (neither is readable state).  Committed
shards are removed only when the caller names the spec hashes to
*keep* — the store never ages out facts on its own, because a
content-addressed fact cannot go stale.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import os
import pickle
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.spec import RunSpec

#: On-disk payload format; bump on incompatible ShardPayload changes.
#: Format 2 wraps the pickled payload in a checksummed envelope
#: (``sha256`` over the payload bytes) so damage is detectable.
STORE_FORMAT = 2

_MARKER = "store.json"
_SPECS = "specs"


class StoreError(ValueError):
    """A store operation that cannot be performed."""


@dataclasses.dataclass
class ShardPayload:
    """Everything one committed shard contributes to a merged batch.

    ``journal_bytes`` holds the shard's complete JSONL journal segment
    (header line included) when the sweep recorded one, so a cached
    shard re-enters :func:`repro.obs.journal.concatenate_journals`
    exactly like a freshly executed shard's file does.
    """

    start: int
    stop: int
    runs: List[Any]
    metrics: Optional[Any] = None
    journal_bytes: Optional[bytes] = None
    journal_events: int = 0


@dataclasses.dataclass
class StoreStats:
    """What the store contributed to one sweep (``BatchStats.store``)."""

    spec_hash: str = ""
    hits: int = 0
    misses: int = 0
    runs_from_cache: int = 0
    runs_executed: int = 0

    @property
    def fully_cached(self) -> bool:
        """True when the sweep executed zero kernel steps."""
        return self.misses == 0


@dataclasses.dataclass(frozen=True)
class ShardVerdict:
    """One shard's :meth:`RunStore.verify` result."""

    path: str
    spec_hash: str
    ok: bool
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """One spec's footprint in the store (``repro store ls`` row)."""

    spec_hash: str
    describe: str
    seeds: Tuple[int, ...]
    n_shards: int
    n_runs: int
    bytes: int


class RunStore:
    """The content-addressed shard store rooted at ``root``.

    ``on_commit`` is an optional hook called *after* each atomic shard
    commit with ``(spec_hash, root_seed, start, stop, path)``.  The
    resume test suite uses it as a fault injector — raising from the
    hook simulates a sweep killed between shard commits; everything
    committed before the fault stays durable and resumable.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.on_commit: Optional[Callable[[str, int, int, int, str],
                                          None]] = None
        #: Paths of damaged shard files renamed to ``*.corrupt`` by
        #: healing loads (``load_shard(..., heal=True)``), in detection
        #: order.  The supervisor folds these into its FaultReport.
        self.healed: List[str] = []
        os.makedirs(os.path.join(root, _SPECS), exist_ok=True)
        marker = os.path.join(root, _MARKER)
        if not os.path.exists(marker):
            tmp = marker + ".tmp"
            with open(tmp, "w") as fh:
                json.dump({"repro_store": STORE_FORMAT}, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, marker)
        else:
            with open(marker) as fh:
                doc = json.load(fh)
            if doc.get("repro_store") != STORE_FORMAT:
                raise StoreError(
                    f"{root} is a repro store of format "
                    f"{doc.get('repro_store')!r}; this build reads "
                    f"format {STORE_FORMAT}")

    # -- paths ---------------------------------------------------------

    def _spec_dir(self, spec_hash: str) -> str:
        return os.path.join(self.root, _SPECS, spec_hash)

    def shard_path(self, spec_hash: str, root_seed: int,
                   start: int, stop: int) -> str:
        """Where the shard ``[start, stop)`` of a sweep is filed."""
        return os.path.join(
            self._spec_dir(spec_hash), f"seed-{root_seed}",
            f"shard-{start:08d}-{stop:08d}.pkl")

    # -- read side -----------------------------------------------------

    def _read_shard_doc(self, path: str) -> Dict[str, Any]:
        """Load + structurally validate one shard file (no key check).

        Raises :class:`StoreError` on any damage: unreadable pickle,
        wrong format, or a payload whose bytes no longer match the
        committed SHA-256.
        """
        try:
            with open(path, "rb") as fh:
                doc = pickle.load(fh)
        except Exception as exc:
            raise StoreError(
                f"unreadable shard {path}: {exc} (the store only "
                f"writes whole files; remove it to re-execute)"
            ) from exc
        if not isinstance(doc, dict) or doc.get("format") != STORE_FORMAT:
            fmt = doc.get("format") if isinstance(doc, dict) else None
            raise StoreError(
                f"shard {path} has format {fmt!r}; this "
                f"build reads format {STORE_FORMAT}")
        payload_bytes = doc.get("payload")
        digest = hashlib.sha256(payload_bytes).hexdigest() \
            if isinstance(payload_bytes, bytes) else None
        if digest is None or digest != doc.get("sha256"):
            raise StoreError(
                f"shard {path} fails its checksum (committed "
                f"{str(doc.get('sha256'))[:12]}…, recomputed "
                f"{str(digest)[:12]}…): the file was damaged after "
                f"commit")
        return doc

    def _heal(self, path: str) -> None:
        """Quarantine a damaged shard file as ``<path>.corrupt``."""
        os.replace(path, path + ".corrupt")
        self.healed.append(path)

    def load_shard(self, spec_hash: str, root_seed: int,
                   start: int, stop: int,
                   heal: bool = False) -> Optional[ShardPayload]:
        """The committed payload for the exact key, or ``None``.

        Only whole, checksum-matching files answer.  A damaged or
        mis-keyed file (which the atomic commit protocol never produces
        by itself) raises :class:`StoreError` by default, rather than
        silently re-executing over it.  With ``heal=True`` — the
        resumable-sweep path — the damaged file is renamed to
        ``<path>.corrupt``, recorded on :attr:`healed`, and the load
        answers ``None`` so the caller recomputes the shard.
        """
        path = self.shard_path(spec_hash, root_seed, start, stop)
        if not os.path.exists(path):
            return None
        try:
            doc = self._read_shard_doc(path)
            key = (doc.get("spec_hash"), doc.get("root_seed"),
                   doc.get("start"), doc.get("stop"))
            if key != (spec_hash, root_seed, start, stop):
                raise StoreError(
                    f"shard {path} is keyed {key}, not "
                    f"{(spec_hash, root_seed, start, stop)}")
        except StoreError:
            if not heal:
                raise
            self._heal(path)
            return None
        return pickle.loads(doc["payload"])

    # -- write side ----------------------------------------------------

    def commit_shard(self, spec: RunSpec, root_seed: int,
                     payload: ShardPayload) -> str:
        """Atomically commit one finished shard; returns its path.

        Uses the journal finalization idiom: stream to ``<path>.tmp``,
        flush + fsync, then ``os.replace`` onto the final name — the
        shard appears on disk whole or not at all.  The spec's
        ``spec.json`` is committed the same way, once, so every shard
        tree is self-describing.
        """
        spec_hash = spec.spec_hash()
        spec_dir = self._spec_dir(spec_hash)
        os.makedirs(os.path.join(spec_dir, f"seed-{root_seed}"),
                    exist_ok=True)
        spec_doc = os.path.join(spec_dir, "spec.json")
        if not os.path.exists(spec_doc):
            tmp = spec_doc + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(spec.to_canonical(), fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, spec_doc)
        path = self.shard_path(spec_hash, root_seed,
                               payload.start, payload.stop)
        payload_bytes = pickle.dumps(payload,
                                     protocol=pickle.HIGHEST_PROTOCOL)
        doc = {
            "format": STORE_FORMAT,
            "spec_hash": spec_hash,
            "root_seed": root_seed,
            "start": payload.start,
            "stop": payload.stop,
            "sha256": hashlib.sha256(payload_bytes).hexdigest(),
            "payload": payload_bytes,
        }
        buf = io.BytesIO()
        pickle.dump(doc, buf, protocol=pickle.HIGHEST_PROTOCOL)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(buf.getvalue())
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        if self.on_commit is not None:
            self.on_commit(spec_hash, root_seed,
                           payload.start, payload.stop, path)
        return path

    # -- maintenance ---------------------------------------------------

    def _iter_spec_hashes(self) -> List[str]:
        specs = os.path.join(self.root, _SPECS)
        return sorted(
            d for d in os.listdir(specs)
            if os.path.isdir(os.path.join(specs, d)))

    def ls(self) -> List[StoreEntry]:
        """One :class:`StoreEntry` per stored spec, hash-sorted."""
        entries = []
        for spec_hash in self._iter_spec_hashes():
            spec_dir = self._spec_dir(spec_hash)
            describe = ""
            doc_path = os.path.join(spec_dir, "spec.json")
            if os.path.exists(doc_path):
                with open(doc_path) as fh:
                    doc = json.load(fh)
                describe = (
                    f"{doc['protocol']['name']}"
                    f"({doc['protocol']['n_processes']}) "
                    f"sched={doc['scheduler']['name']} "
                    f"mem={doc['memory']} engine={doc['engine']} "
                    f"max_steps={doc['budgets']['max_steps']}")
            seeds, n_shards, n_runs, size = [], 0, 0, 0
            for seed_dir in sorted(os.listdir(spec_dir)):
                if not seed_dir.startswith("seed-"):
                    continue
                seeds.append(int(seed_dir[len("seed-"):]))
                full = os.path.join(spec_dir, seed_dir)
                for shard in os.listdir(full):
                    if not (shard.startswith("shard-")
                            and shard.endswith(".pkl")):
                        continue
                    n_shards += 1
                    stem = shard[len("shard-"):-len(".pkl")]
                    start, stop = (int(p) for p in stem.split("-"))
                    n_runs += stop - start
                    size += os.path.getsize(os.path.join(full, shard))
            entries.append(StoreEntry(
                spec_hash=spec_hash, describe=describe,
                seeds=tuple(sorted(seeds)), n_shards=n_shards,
                n_runs=n_runs, bytes=size))
        return entries

    def show(self, spec_hash: str) -> Dict[str, Any]:
        """Canonical spec + per-seed shard ranges for one stored spec.

        Accepts a unique hash prefix (≥ 8 chars) like git does.
        """
        matches = [h for h in self._iter_spec_hashes()
                   if h.startswith(spec_hash)]
        if not matches:
            raise StoreError(f"no stored spec matches {spec_hash!r}")
        if len(matches) > 1:
            raise StoreError(
                f"{spec_hash!r} is ambiguous: "
                f"{', '.join(h[:12] for h in matches)}")
        spec_hash = matches[0]
        spec_dir = self._spec_dir(spec_hash)
        with open(os.path.join(spec_dir, "spec.json")) as fh:
            spec_doc = json.load(fh)
        seeds: Dict[int, List[Tuple[int, int]]] = {}
        for seed_dir in sorted(os.listdir(spec_dir)):
            if not seed_dir.startswith("seed-"):
                continue
            seed = int(seed_dir[len("seed-"):])
            ranges = []
            full = os.path.join(spec_dir, seed_dir)
            for shard in sorted(os.listdir(full)):
                if shard.startswith("shard-") and shard.endswith(".pkl"):
                    stem = shard[len("shard-"):-len(".pkl")]
                    start, stop = (int(p) for p in stem.split("-"))
                    ranges.append((start, stop))
            seeds[seed] = ranges
        return {"spec_hash": spec_hash, "spec": spec_doc, "seeds": seeds}

    def verify(self, spec_hash: Optional[str] = None) -> List[ShardVerdict]:
        """Checksum every committed shard; one verdict per shard file.

        Each ``shard-*.pkl`` is unpickled, format-checked, SHA-256
        verified against its committed checksum, and key-checked
        against its own path — without deserializing payloads into a
        sweep.  ``spec_hash`` (full hash or unique prefix, like
        :meth:`show`) narrows the walk to one spec tree.  Damage is
        *reported*, never modified: pair with a healing resume (or
        delete the file) to recover.
        """
        hashes = self._iter_spec_hashes()
        if spec_hash is not None:
            hashes = [h for h in hashes if h.startswith(spec_hash)]
            if not hashes:
                raise StoreError(f"no stored spec matches {spec_hash!r}")
        verdicts: List[ShardVerdict] = []
        for h in hashes:
            spec_dir = self._spec_dir(h)
            for seed_dir in sorted(os.listdir(spec_dir)):
                if not seed_dir.startswith("seed-"):
                    continue
                seed = int(seed_dir[len("seed-"):])
                full = os.path.join(spec_dir, seed_dir)
                for shard in sorted(os.listdir(full)):
                    if not (shard.startswith("shard-")
                            and shard.endswith(".pkl")):
                        continue
                    path = os.path.join(full, shard)
                    stem = shard[len("shard-"):-len(".pkl")]
                    start, stop = (int(p) for p in stem.split("-"))
                    try:
                        doc = self._read_shard_doc(path)
                        key = (doc.get("spec_hash"),
                               doc.get("root_seed"),
                               doc.get("start"), doc.get("stop"))
                        if key != (h, seed, start, stop):
                            raise StoreError(
                                f"shard {path} is keyed {key}, not "
                                f"{(h, seed, start, stop)}")
                    except StoreError as exc:
                        verdicts.append(ShardVerdict(
                            path=path, spec_hash=h, ok=False,
                            detail=str(exc)))
                    else:
                        verdicts.append(ShardVerdict(
                            path=path, spec_hash=h, ok=True,
                            detail=f"{stop - start} runs, "
                                   f"sha256 {doc['sha256'][:12]}…"))
        return verdicts

    def gc(self, keep: Optional[List[str]] = None,
           dry_run: bool = False) -> List[str]:
        """Sweep the store; returns the paths removed (or would-remove).

        Always removes orphaned ``.tmp`` files — a crashed writer's
        partial output — and quarantined ``.corrupt`` files left by
        healing loads; neither is readable state.  When ``keep`` is
        given (full hashes or unique prefixes), whole spec trees *not*
        matching any kept prefix are removed too; without ``keep``,
        committed data is never touched.
        """
        removed: List[str] = []

        def _rm(path: str) -> None:
            removed.append(path)
            if dry_run:
                return
            if os.path.isdir(path):
                for sub in sorted(
                        (os.path.join(dp, f)
                         for dp, _, fs in os.walk(path) for f in fs),
                        reverse=True):
                    os.remove(sub)
                for dp, dns, _ in sorted(os.walk(path), reverse=True):
                    for dn in dns:
                        os.rmdir(os.path.join(dp, dn))
                os.rmdir(path)
            else:
                os.remove(path)

        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith((".tmp", ".corrupt")):
                    _rm(os.path.join(dirpath, name))
        if keep is not None:
            for spec_hash in self._iter_spec_hashes():
                if not any(spec_hash.startswith(k) for k in keep):
                    _rm(self._spec_dir(spec_hash))
        return removed

"""The engine registry: one canonical catalogue of execution backends.

The library grew three *simulation* engines (``reference``, ``fast``,
``vector``) and three *checker* engines (``objects``, ``tables``,
``fingerprints``), and with them five divergent hand-rolled
``if engine not in (...)`` blocks scattered over the runner, ``solve``,
the explorer and the CLI.  This module replaces that plumbing with a
single registry: engines register themselves once, with capability
flags, and every selection path — :class:`~repro.sim.kernel.Simulation`,
:class:`~repro.sim.runner.ExperimentRunner`,
:class:`~repro.parallel.engine.BatchSpec`,
:func:`~repro.checker.explorer.explore`,
:func:`~repro.checker.properties.verify_safety` and all CLI
``--engine`` flags — resolves and validates through
:func:`resolve_engine`.

Engines are namespaced by *kind*:

* ``"sim"`` — executes seeded runs; one result per ``(root_seed,
  run_index)``, bit-identical across engines for the supported matrix
  (docs/PERFORMANCE.md, docs/IR.md).
* ``"checker"`` — explores the reachable configuration space; identical
  verdicts across engines (docs/CHECKER.md).

Capability flags describe what each backend supports so callers can
validate a request (e.g. ``symmetry=True`` needs a checker engine with
``reductions``) instead of hard-coding engine names.  Unknown names
raise :class:`UnknownEngineError` — a ``ValueError`` carrying the valid
vocabulary and a did-you-mean suggestion — from exactly one place.

Third-party backends may call :func:`register_engine` at import time;
the built-in engines below use the same call, so an external
registration is indistinguishable from a built-in one.
"""

from __future__ import annotations

import dataclasses
import difflib
import warnings
from typing import Dict, Optional, Tuple

#: Engine kinds (registry namespaces).
SIM = "sim"
CHECKER = "checker"
_KINDS = (SIM, CHECKER)


class UnknownEngineError(ValueError):
    """An engine name that is not registered (for the requested kind).

    Subclasses :class:`ValueError` so legacy callers that caught the
    five hand-rolled validation errors keep working unchanged.
    """


@dataclasses.dataclass(frozen=True)
class EngineInfo:
    """One registered backend and what it can do.

    ``batch_shape`` names the execution granularity: ``"single"``
    engines step one run at a time, ``"lockstep"`` engines advance
    whole mega-batches per Python-level operation
    (:data:`repro.ir.BATCH_CHUNK` runs), ``"graph"`` engines
    materialize a :class:`~repro.checker.explorer.ConfigGraph`, and
    ``"level"`` engines stream level-synchronous frontiers without a
    graph.
    """

    name: str
    kind: str
    summary: str
    #: Execution granularity: "single" | "lockstep" | "graph" | "level".
    batch_shape: str = "single"
    #: Supports regular/safe register semantics (all built-ins do).
    weak_memory: bool = True
    #: Checker only: supports the verified symmetry/POR reductions,
    #: sharded workers and the exact-visited-set toggle.
    reductions: bool = False
    #: Sim only: constructible as a standalone ``Simulation`` (the
    #: vector backend needs the batch entry points instead).
    standalone: bool = False
    #: Resolved when the caller passes ``engine=None``.
    default: bool = False


_REGISTRY: Dict[Tuple[str, str], EngineInfo] = {}


def register_engine(info: EngineInfo) -> EngineInfo:
    """Register a backend; returns ``info``.  Duplicate names raise."""
    if info.kind not in _KINDS:
        raise ValueError(
            f"unknown engine kind {info.kind!r} (expected one of {_KINDS})")
    key = (info.kind, info.name)
    if key in _REGISTRY:
        raise ValueError(
            f"{info.kind} engine {info.name!r} is already registered")
    if info.default and any(e.default for e in _REGISTRY.values()
                            if e.kind == info.kind):
        raise ValueError(
            f"kind {info.kind!r} already has a default engine")
    _REGISTRY[key] = info
    return info


def engine_names(kind: str) -> Tuple[str, ...]:
    """Registered engine names of one kind, in registration order."""
    return tuple(name for (k, name) in _REGISTRY if k == kind)


def default_engine(kind: str) -> EngineInfo:
    """The engine ``engine=None`` resolves to for ``kind``."""
    for info in _REGISTRY.values():
        if info.kind == kind and info.default:
            return info
    raise LookupError(f"no default engine registered for kind {kind!r}")


def _unknown(kind: str, name: str) -> UnknownEngineError:
    """The one engine-validation error message (did-you-mean included)."""
    valid = engine_names(kind)
    msg = (f"unknown {kind} engine {name!r}: expected one of "
           f"{', '.join(repr(v) for v in valid)}")
    other = next(k for k in _KINDS if k != kind)
    if (other, name) in _REGISTRY:
        msg += (f" ({name!r} is a {other} engine — this selection "
                f"point takes {kind} engines)")
    else:
        close = difflib.get_close_matches(name, valid, n=1, cutoff=0.5)
        if close:
            msg += f" — did you mean {close[0]!r}?"
    return UnknownEngineError(msg)


def resolve_engine(kind: str, name: Optional[str] = None) -> EngineInfo:
    """Resolve ``name`` (or the kind's default for ``None``).

    Raises :class:`UnknownEngineError` with the full valid vocabulary
    and a did-you-mean suggestion for anything unregistered.  This is
    the single validation point behind every engine selection path.
    """
    if kind not in _KINDS:
        raise ValueError(
            f"unknown engine kind {kind!r} (expected one of {_KINDS})")
    if name is None:
        return default_engine(kind)
    if isinstance(name, EngineInfo):
        return name
    info = _REGISTRY.get((kind, name))
    if info is None:
        raise _unknown(kind, name)
    return info


def resolve_sim_engine(engine: Optional[str] = None,
                       fast: Optional[bool] = None,
                       caller: str = "Simulation") -> EngineInfo:
    """Resolve a sim engine honoring the deprecated ``fast=`` alias.

    ``fast`` predates named engines (``True`` → ``"fast"``, ``False`` →
    ``"reference"``); passing it emits a :class:`DeprecationWarning`
    and it is ignored entirely when ``engine`` is also given.
    """
    if fast is not None:
        warnings.warn(
            f"{caller}(fast=...) is deprecated; pass engine='fast' or "
            f"engine='reference' instead (see repro.engines)",
            DeprecationWarning, stacklevel=3)
        if engine is None:
            engine = "fast" if fast else "reference"
    return resolve_engine(SIM, engine)


# -- built-in engines --------------------------------------------------
#
# Registered through the public API so external backends look exactly
# like these.  Keep the registrations here (not in the implementing
# modules): the registry must be importable without dragging in numpy
# or the checker, and the implementing modules all import *us* for
# resolution.

register_engine(EngineInfo(
    name="reference", kind=SIM,
    summary=("seed kernel verbatim: immutable Configuration per step; "
             "the baseline every other engine is differential-tested "
             "against"),
    batch_shape="single", standalone=True))
register_engine(EngineInfo(
    name="fast", kind=SIM,
    summary=("interpreted kernel with mutable buffers and a shared "
             "TransitionCache (docs/PERFORMANCE.md)"),
    batch_shape="single", standalone=True, default=True))
register_engine(EngineInfo(
    name="vector", kind=SIM,
    summary=("compiled table IR stepping lockstep mega-batches "
             "(docs/IR.md); raises IRUnsupportedError outside the "
             "supported matrix"),
    batch_shape="lockstep"))

register_engine(EngineInfo(
    name="objects", kind=CHECKER,
    summary=("BFS over rich Configuration objects, materializing the "
             "ConfigGraph"),
    batch_shape="graph", default=True))
register_engine(EngineInfo(
    name="tables", kind=CHECKER,
    summary=("the objects BFS over compiled table-IR keys — identical "
             "graph, interned integer states"),
    batch_shape="graph"))
register_engine(EngineInfo(
    name="fingerprints", kind=CHECKER,
    summary=("scalable fingerprinted state-space engine with verified "
             "symmetry/POR and a sharded frontier (docs/CHECKER.md)"),
    batch_shape="level", reductions=True))

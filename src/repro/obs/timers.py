"""Wall-clock phase profiling.

Where does a simulated step actually spend its time — deciding *who*
moves (scheduler choice), moving them (kernel step), or computing the
automaton transition inside the move?  :class:`PhaseTimer` answers
that.  It is the only sink that sets ``wants_timing``, which is what
makes the kernel reach for ``perf_counter`` at all; attaching metrics
or journal sinks alone never pays for clock reads.

Phases emitted by the kernel:

``sched``       one scheduler consultation sequence (including any
                injected crashes) inside :meth:`Simulation.step`
``step``        one :meth:`Simulation.step_processor` execution
``transition``  the protocol-automaton part of a step
                (``branches`` + ``observe``), a subset of ``step``
``memory``      weak-memory value resolution inside a step (legal-set
                computation, adversary consultation, write
                installation); a subset of ``step``, disjoint from
                ``transition``, and never emitted under atomic
                semantics (atomic register access is plain kernel work)
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Optional, Tuple

from repro.obs.hooks import BaseSink


class PhaseSpan:
    """Accumulated wall time and event count for one phase."""

    __slots__ = ("seconds", "count")

    def __init__(self) -> None:
        self.seconds = 0.0
        self.count = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.count += 1

    @property
    def mean_us(self) -> Optional[float]:
        """Mean duration in microseconds."""
        return self.seconds * 1e6 / self.count if self.count else None


class PhaseTimer(BaseSink):
    """Profiling sink: per-phase wall time plus whole-run wall time."""

    wants_timing = True

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseSpan] = {}
        self.run_seconds = 0.0
        self.n_runs = 0
        self._run_t0: Optional[float] = None

    def on_phase_time(self, phase: str, seconds: float) -> None:
        span = self.phases.get(phase)
        if span is None:
            span = self.phases[phase] = PhaseSpan()
        span.add(seconds)

    def on_run_start(self, protocol_name: str, n_processes: int,
                     inputs: Tuple[Hashable, ...]) -> None:
        self._run_t0 = time.perf_counter()

    def on_run_end(self, result) -> None:
        if self._run_t0 is not None:
            self.run_seconds += time.perf_counter() - self._run_t0
            self._run_t0 = None
        self.n_runs += 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": self.n_runs,
            "run_seconds": self.run_seconds,
            "phases": {
                name: {
                    "seconds": span.seconds,
                    "count": span.count,
                    "mean_us": span.mean_us,
                }
                for name, span in sorted(self.phases.items())
            },
        }

    def render(self) -> str:
        lines = [f"runs: {self.n_runs}  wall: {self.run_seconds:.4f}s"]
        if self.phases:
            width = max(len(name) for name in self.phases)
            for name in sorted(self.phases):
                span = self.phases[name]
                lines.append(
                    f"  {name:<{width}}  {span.seconds:.4f}s over "
                    f"{span.count} events ({span.mean_us:.2f}us mean)"
                )
        return "\n".join(lines)

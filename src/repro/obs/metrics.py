"""Streaming metrics: counters, gauges, histograms, and the registry sink.

The quantities the paper reasons about are distributions over a run's
event stream — steps a processor needs to decide (Theorem 7), coin
flips per decision, the ``num``-field depth in the three-processor
protocol's registers (Theorem 9).  A Monte-Carlo batch observes those
distributions over millions of steps, so the instruments here are
streaming: a histogram is a dict of exact-value counts (the domains are
small integers), a counter is one int, and nothing retains per-event
records.

:class:`MetricsRegistry` is both a generic metrics container (create
your own instruments with :meth:`counter` / :meth:`gauge` /
:meth:`histogram`) and a kernel sink that populates a standard set of
well-known metrics from the hook stream.  One registry may be attached
across an entire batch of runs; everything aggregates.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.obs.hooks import BaseSink


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold ``other`` in: counts add (associative and commutative)."""
        self.value += other.value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A last-value instrument that also tracks its extremes."""

    __slots__ = ("value", "minimum", "maximum")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def set(self, x: float) -> None:
        self.value = x
        if self.minimum is None or x < self.minimum:
            self.minimum = x
        if self.maximum is None or x > self.maximum:
            self.maximum = x

    def merge(self, other: "Gauge") -> None:
        """Fold ``other`` in, treating it as the *later* shard.

        ``minimum``/``maximum`` become the unions (associative and
        commutative); ``value`` is last-writer-wins in merge order —
        ``other``'s value if it ever set one, else unchanged.  Merging
        shards in run-index order therefore reproduces exactly the
        final value a serial pass would have left.  An ``other`` that
        never observed anything is a no-op.
        """
        for x in (other.minimum, other.maximum, other.value):
            if x is not None:
                self.set(x)

    def __repr__(self) -> str:
        return f"Gauge({self.value}, min={self.minimum}, max={self.maximum})"


class Histogram:
    """Exact-count histogram over an integer-valued sample.

    Stores ``value -> count``; the event domains here (steps, flips,
    ``num`` depths) are small non-negative integers, so exact counts
    are cheaper and more faithful than bucketed approximations.
    Percentiles interpolate linearly between the closest order
    statistics (the ``h = (n-1)q`` convention), which is deterministic
    and well-defined at every sample size — p99 of three samples is a
    clamped interpolation toward the maximum, not a KeyError and not
    silently the maximum itself.  (The batch-statistics helper
    :func:`repro.analysis.stats.percentile` keeps its nearest-rank
    convention; the two agree at large N and on exact ranks.)
    """

    __slots__ = ("counts", "total", "_sum")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.total = 0
        self._sum = 0

    def observe(self, x: int, n: int = 1) -> None:
        self.counts[x] = self.counts.get(x, 0) + n
        self.total += n
        self._sum += x * n

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self.total if self.total else None

    @property
    def minimum(self) -> Optional[int]:
        return min(self.counts) if self.counts else None

    @property
    def maximum(self) -> Optional[int]:
        return max(self.counts) if self.counts else None

    def percentile(self, q: float) -> Optional[float]:
        """Linearly interpolated percentile, ``0 <= q <= 1``.

        The fractional rank ``h = (total - 1) * q`` (clamped into the
        sample) sits between order statistics ``x[floor(h)]`` and
        ``x[ceil(h)]``; the result interpolates between them and
        collapses to a plain int when the interpolation is exact (the
        common case for repeated small-integer samples).  N=1 returns
        the sample; every q is total-order deterministic.
        """
        total = self.total
        if not total:
            return None
        h = (total - 1) * min(1.0, max(0.0, q))
        lo_rank = math.floor(h)
        frac = h - lo_rank
        # Cumulative walk to the order statistics at lo_rank and
        # lo_rank + 1 (0-indexed ranks over the sorted pooled sample).
        lo_val: Optional[int] = None
        hi_val: Optional[int] = None
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if lo_val is None and seen >= lo_rank + 1:
                lo_val = value
            if seen >= lo_rank + 2 or (frac == 0.0 and lo_val is not None):
                hi_val = value if frac else lo_val
                break
        if lo_val is None:  # pragma: no cover - defensive
            lo_val = max(self.counts)
        if hi_val is None:
            hi_val = max(self.counts)
        if frac == 0.0 or hi_val == lo_val:
            return lo_val
        x = lo_val + (hi_val - lo_val) * frac
        return int(x) if x == int(x) else x

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(0.50)

    @property
    def p90(self) -> Optional[float]:
        return self.percentile(0.90)

    @property
    def p99(self) -> Optional[float]:
        return self.percentile(0.99)

    def tail_probability(self, k: int) -> Optional[float]:
        """Empirical P(X > k) — comparable to the paper's tail bounds."""
        if not self.total:
            return None
        above = sum(c for v, c in self.counts.items() if v > k)
        return above / self.total

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in: exact counts union key-wise (counts for
        shared values add, disjoint values are inserted), so the merge
        is associative, commutative, and lossless — percentiles of the
        merged histogram equal percentiles of the pooled sample.
        """
        for value, count in other.counts.items():
            self.observe(value, count)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "counts": {str(k): v for k, v in sorted(self.counts.items())},
        }

    def __repr__(self) -> str:
        return (f"Histogram(n={self.total}, mean={self.mean}, "
                f"p50={self.p50}, p99={self.p99})")


def _num_depth_of(value: Hashable) -> Optional[int]:
    """Duck-typed ``num`` field of a register value.

    The three-processor protocols write ``[pref, num]`` records
    (:class:`repro.core.rules.PrefNum`); journal replay sees the same
    records as plain dicts.  Anything else yields ``None``.
    """
    num = getattr(value, "num", None)
    if num is None and isinstance(value, dict):
        num = value.get("num")
    return num if isinstance(num, int) else None


class MetricsRegistry(BaseSink):
    """Named instruments plus the standard kernel metric set.

    Well-known metrics populated from the hook stream:

    counters
        ``runs``, ``runs_completed``, ``steps``, ``reads``, ``writes``,
        ``coin_flips``, ``crashes``, ``sched_consults``,
        ``decisions``, ``register_contention`` (writes that overwrote a
        value no processor ever read), ``read_choice_points`` (weak-
        memory reads the adversary resolved from >1 legal value — see
        docs/MODEL.md; never incremented under atomic semantics).
    gauges
        ``max_num_depth`` — deepest ``num`` field ever written (the
        quantity Theorem 9 bounds by a (3/4)^k envelope).
    histograms
        ``steps_to_decide`` (per processor per run — Theorem 7's
        variable), ``coin_flips_per_decision``, ``num_depth`` (one
        sample per write carrying a ``num`` field), ``run_steps`` and
        ``run_sched_consults`` (one sample per run),
        ``read_choice_fanout`` (legal-set size, one sample per resolved
        weak-memory read).
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        # Per-run scratch, reset at each run_start.
        self._run_flips: Dict[int, int] = {}
        self._unread_write: Dict[str, bool] = {}

    # -- instrument factories -----------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create a counter."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        """Get or create a histogram."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- kernel sink protocol -----------------------------------------

    def on_run_start(self, protocol_name: str, n_processes: int,
                     inputs: Tuple[Hashable, ...]) -> None:
        self.counter("runs").inc()
        self._run_flips = {}
        self._unread_write = {}

    def on_sched(self, consults: int) -> None:
        self.counter("sched_consults").inc()

    def on_coin_flip(self, pid: int, n_branches: int) -> None:
        self.counter("coin_flips").inc()
        self._run_flips[pid] = self._run_flips.get(pid, 0) + 1

    def on_read_choices(self, pid: int, register: str, n_choices: int,
                        chosen: Hashable) -> None:
        self.counter("read_choice_points").inc()
        self.histogram("read_choice_fanout").observe(n_choices)

    def on_read(self, pid: int, register: str, value: Hashable) -> None:
        self.counter("reads").inc()
        self._unread_write[register] = False

    def on_write(self, pid: int, register: str, value: Hashable) -> None:
        self.counter("writes").inc()
        if self._unread_write.get(register, False):
            self.counter("register_contention").inc()
        self._unread_write[register] = True
        depth = _num_depth_of(value)
        if depth is not None:
            self.gauge("max_num_depth").set(depth)
            self.histogram("num_depth").observe(depth)

    def on_decision(self, pid: int, value: Hashable, activation: int) -> None:
        self.counter("decisions").inc()
        self.histogram("steps_to_decide").observe(activation)
        self.histogram("coin_flips_per_decision").observe(
            self._run_flips.get(pid, 0)
        )

    def on_crash(self, pid: int, index: int) -> None:
        self.counter("crashes").inc()

    def on_step(self, index: int, pid: int, op, result: Hashable,
                decided: Optional[Hashable]) -> None:
        self.counter("steps").inc()

    def on_run_end(self, result) -> None:
        if getattr(result, "completed", False):
            self.counter("runs_completed").inc()
        self.histogram("run_steps").observe(result.total_steps)
        consults = getattr(result, "sched_consults", None)
        if consults is not None:
            self.histogram("run_sched_consults").observe(consults)

    # -- aggregation and output ---------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (for sharded batches).

        Instruments are matched by name; ones existing only in
        ``other`` are created here (so merging into a fresh registry
        copies ``other``'s aggregates).  Semantics per kind: counters
        add, histograms union their exact counts, gauges union min/max
        with a last-writer-wins value — so merging shard registries in
        run-index order (what :func:`repro.parallel.run_parallel` does)
        yields a registry whose :meth:`to_dict` snapshot is
        bit-identical to observing the whole batch serially.  The merge
        is associative; only the gauge ``value`` field makes it
        non-commutative.  Per-run scratch state (coin-flip attribution,
        unread-write tracking) is *not* merged: merge between runs, not
        mid-run.  ``other`` is read, never mutated.
        """
        for name, c in other.counters.items():
            self.counter(name).merge(c)
        for name, g in other.gauges.items():
            self.gauge(name).merge(g)
        for name, h in other.histograms.items():
            self.histogram(name).merge(h)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (the ``observability`` metrics block)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {
                k: {"value": g.value, "min": g.minimum, "max": g.maximum}
                for k, g in sorted(self.gauges.items())
            },
            "histograms": {
                k: h.to_dict() for k, h in sorted(self.histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines: List[str] = []
        if self.counters:
            lines.append("counters:")
            width = max(len(k) for k in self.counters)
            for name in sorted(self.counters):
                lines.append(f"  {name:<{width}}  "
                             f"{self.counters[name].value}")
        if self.gauges:
            lines.append("gauges:")
            width = max(len(k) for k in self.gauges)
            for name in sorted(self.gauges):
                g = self.gauges[name]
                lines.append(f"  {name:<{width}}  {g.value} "
                             f"(min {g.minimum}, max {g.maximum})")
        if self.histograms:
            lines.append("histograms:")
            width = max(len(k) for k in self.histograms)
            for name in sorted(self.histograms):
                h = self.histograms[name]
                if not h.total:
                    lines.append(f"  {name:<{width}}  (empty)")
                    continue
                lines.append(
                    f"  {name:<{width}}  n={h.total} "
                    f"mean={h.mean:.2f} p50={h.p50} p90={h.p90} "
                    f"p99={h.p99} max={h.maximum}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"

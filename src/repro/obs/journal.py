"""Streaming JSONL run journal.

``record_trace=True`` keeps every :class:`StepRecord` in memory — fine
for a 40-step demo, hopeless for a Monte-Carlo batch.  The journal is
the streaming alternative: one bounded JSON object per kernel event,
written to disk as it happens and never retained.  A journal is both a
human-greppable artifact and a replayable one: feeding it back through
:func:`replay_journal` reproduces, event for event, the exact metrics a
live :class:`~repro.obs.metrics.MetricsRegistry` would have collected.

Schema (version 3) — one object per line:

``{"t": "journal", "v": 3, "mem": "atomic"|"regular"|"safe"}``
    header, always the first line; ``mem`` tags the register semantics
    every run in the file executed under (see :mod:`repro.sim.memory`).
``{"t": "run_start", "protocol": str, "n": int, "inputs": [...]}``
``{"t": "step", "i": int, "pid": int, "op": "read"|"write",
  "reg": str, "value": ..., "result": ..., "cf": true?, "alts": int?,
  "dec": ..., "act": int?}``
    one serialized kernel step.  ``value`` only on writes, ``result``
    only on reads; ``cf`` present when the step resolved a coin flip;
    ``alts`` present when a weak-memory read was resolved from a legal
    value set (its size; the chosen value is ``result``);
    ``dec``/``act`` present when the step decided (value + activation).
``{"t": "crash", "i": int, "pid": int}``
``{"t": "run_end", "completed": bool, "steps": int, "consults": int,
  "crashed": [...]}``
``{"t": "span", "trace_id": str, "span_id": str, "parent_id": str?,
  "name": str, "kind": str, "start": int, "end": int, "attrs": {...}?}``
    **optional** (new in v3): one line per finished span when a
    :class:`~repro.obs.tracing.Tracer` is paired with the journal.
    Spans are appended after their run's ``run_end`` line; metric
    replay skips them, :func:`iter_spans` reads them back.

Version 2 (PR 4 through PR 5) is v3 minus the optional ``span`` lines;
version 1 (PR 1 through PR 3) further lacks the header's ``mem`` key
and the ``alts`` step key.  Since atomic semantics never emit ``alts``
and spans are optional, every v1/v2 journal is also a valid v3 event
stream with an older header, and the readers here accept all three
versions.

**Crash safety.**  A path-owning journal streams to ``<path>.tmp`` and
atomically renames it over ``<path>`` on :meth:`close` (after flush and
fsync), so a finished journal is always complete: readers never see a
half-written file under the final name, and a crash leaves at most a
stale ``.tmp``.  :func:`verify_journal` inspects any journal file —
including an orphaned ``.tmp`` — and reports truncated tails and
unterminated runs instead of raising mid-replay.

Values are JSON-encoded structurally where possible: dataclass register
records (e.g. ``PrefNum``) become dicts, so a ``[pref, num]`` record
survives the round trip well enough for the ``num``-depth metrics;
anything else non-serializable falls back to ``repr``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import (Any, Dict, Hashable, IO, Iterator, List, Optional,
                    Sequence, Tuple, Union)

from repro.obs.hooks import BaseSink
from repro.obs.metrics import MetricsRegistry
from repro.sim.ops import ReadOp, WriteOp

SCHEMA_VERSION = 3

#: Journal versions the readers below understand (v1 = pre-memory-layer
#: files: no "mem" header key, no "alts" step key, atomic by
#: construction; v2 = no optional "span" lines).
SUPPORTED_VERSIONS = (1, 2, 3)


def _jsonable(value: Any) -> Any:
    """Best-effort structural JSON encoding of a register value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class JsonlJournal(BaseSink):
    """Kernel sink streaming one JSON line per event to a file.

    Parameters
    ----------
    target:
        A path to open (truncating) or an already-open text file
        object.  When given a path the journal owns the handle, streams
        to ``<path>.tmp``, and :meth:`close` fsyncs and atomically
        renames the finished file over ``<path>`` — so the final name
        only ever holds a complete journal.  A passed-in file object
        stays the caller's responsibility (no rename).
    flush_every:
        Flush the underlying handle every N events (default 1000), so
        a crash of the *host* process loses a bounded suffix.
    memory:
        Register-semantics tag written into the header (default
        ``"atomic"``); pass the run's :attr:`MemorySpec.name` so
        readers know which semantics produced the event stream.

    The journal never buffers events in Python; memory use is O(1) in
    run length.  One journal may span a whole batch of runs —
    ``run_start`` / ``run_end`` records delimit the runs.
    """

    def __init__(self, target: Union[str, IO[str]],
                 flush_every: int = 1000,
                 memory: str = "atomic") -> None:
        if isinstance(target, str):
            self.path: Optional[str] = target
            self._tmp_path: Optional[str] = target + ".tmp"
            self._fh: IO[str] = open(self._tmp_path, "w")
            self._owns_fh = True
        else:
            self.path = None
            self._tmp_path = None
            self._fh = target
            self._owns_fh = False
        self._closed = False
        self._since_flush = 0
        self._flush_every = max(1, flush_every)
        self.events_written = 0
        self.memory = memory
        self._write({"t": "journal", "v": SCHEMA_VERSION, "mem": memory})
        # Step events are assembled across several hooks (coin flip,
        # op, decision all belong to one step); this scratch dict
        # carries the in-flight step.
        self._pending: Dict[str, Any] = {}

    # -- plumbing ------------------------------------------------------

    def _write(self, obj: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(obj, separators=(",", ":"),
                                  sort_keys=True) + "\n")
        self.events_written += 1
        self._since_flush += 1
        if self._since_flush >= self._flush_every:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        """Finalize the journal.

        Owned files are flushed, fsynced, closed, and atomically
        renamed from ``<path>.tmp`` to ``<path>`` — the journal appears
        under its final name all at once, complete.  Borrowed file
        objects are only flushed.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns_fh:
            try:
                os.fsync(self._fh.fileno())
            except OSError:  # pragma: no cover - non-file targets
                pass
            self._fh.close()
            os.replace(self._tmp_path, self.path)

    def append_spans(self, spans: Sequence) -> None:
        """Write finished :class:`~repro.obs.tracing.Span` records.

        One ``{"t": "span", ...}`` line per span — the v3 optional
        spans section.  Called by a :class:`~repro.obs.tracing.Tracer`
        constructed with ``journal=`` at each run's end.
        """
        for span in spans:
            event = {"t": "span"}
            event.update(span.to_dict())
            self._write(event)

    def __enter__(self) -> "JsonlJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- kernel sink protocol -----------------------------------------

    def on_run_start(self, protocol_name: str, n_processes: int,
                     inputs: Tuple[Hashable, ...]) -> None:
        self._write({
            "t": "run_start",
            "protocol": protocol_name,
            "n": n_processes,
            "inputs": [_jsonable(v) for v in inputs],
        })

    def on_coin_flip(self, pid: int, n_branches: int) -> None:
        self._pending["cf"] = True

    def on_read_choices(self, pid: int, register: str, n_choices: int,
                        chosen: Hashable) -> None:
        # The chosen value lands in the step's "result"; only the
        # fan-out size needs recording here.
        self._pending["alts"] = n_choices

    def on_decision(self, pid: int, value: Hashable, activation: int) -> None:
        self._pending["dec"] = _jsonable(value)
        self._pending["act"] = activation

    def on_crash(self, pid: int, index: int) -> None:
        self._write({"t": "crash", "i": index, "pid": pid})

    def on_step(self, index: int, pid: int, op, result: Hashable,
                decided: Optional[Hashable]) -> None:
        event: Dict[str, Any] = {"t": "step", "i": index, "pid": pid}
        if isinstance(op, ReadOp):
            event["op"] = "read"
            event["reg"] = op.register
            event["result"] = _jsonable(result)
        elif isinstance(op, WriteOp):
            event["op"] = "write"
            event["reg"] = op.register
            event["value"] = _jsonable(op.value)
        else:  # pragma: no cover - no third op kind exists
            event["op"] = repr(op)
        event.update(self._pending)
        self._pending = {}
        self._write(event)

    def on_run_end(self, result) -> None:
        self._write({
            "t": "run_end",
            "completed": bool(result.completed),
            "steps": result.total_steps,
            "consults": getattr(result, "sched_consults", 0),
            "crashed": sorted(result.crashed),
        })
        self._fh.flush()
        self._since_flush = 0


# -- shard concatenation ----------------------------------------------


def concatenate_journals(shard_paths: Sequence[str], out_path: str) -> int:
    """Concatenate journal shards into one journal with a single header.

    Used by the parallel batch engine: each worker streams its shard of
    runs to its own journal file, and this stitches the shards back
    together in shard order — which is global run order, because shards
    are contiguous index ranges.  Every shard's header line is
    validated (and dropped, except that ``out_path`` gets one fresh
    header), and event lines are copied verbatim, so the result is
    byte-identical to the journal a serial run over the same index
    range would have written.

    Returns the total line count of ``out_path`` (header included),
    matching the ``events_written`` a live :class:`JsonlJournal` would
    report for the same stream.

    Every shard must carry the *same* header (version and memory-
    semantics tag): shards of one batch all ran under one
    :class:`~repro.sim.memory.MemorySpec`, and mixing semantics in one
    file would make the header lie about its events.
    """
    events = 0
    expected_header: Optional[Dict[str, Any]] = None
    tmp_path = out_path + ".tmp"
    with open(tmp_path, "w") as out:
        for path in shard_paths:
            with open(path) as fh:
                first = fh.readline()
                if not first:
                    raise ValueError(f"{path}: empty journal shard")
                header = json.loads(first)
                if header.get("t") != "journal":
                    raise ValueError(f"{path}: missing journal header line")
                if header.get("v") not in SUPPORTED_VERSIONS:
                    raise ValueError(
                        f"{path}: unsupported journal version "
                        f"{header.get('v')!r}"
                    )
                if expected_header is None:
                    expected_header = header
                    out.write(json.dumps(header, separators=(",", ":"),
                                         sort_keys=True) + "\n")
                    events += 1
                elif header != expected_header:
                    raise ValueError(
                        f"{path}: shard header {header!r} differs from "
                        f"{expected_header!r}; shards of one batch must "
                        f"share version and memory semantics"
                    )
                for line in fh:
                    if line.strip():
                        out.write(line)
                        events += 1
        if expected_header is None:
            # No shards: an empty batch still yields a valid journal.
            out.write(json.dumps(
                {"t": "journal", "v": SCHEMA_VERSION, "mem": "atomic"},
                separators=(",", ":"), sort_keys=True) + "\n")
            events += 1
        out.flush()
        os.fsync(out.fileno())
    # Same finalization contract as JsonlJournal.close: the stitched
    # journal appears under its final name complete or not at all.
    os.replace(tmp_path, out_path)
    return events


# -- reading and replay -----------------------------------------------


def iter_events(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the journal's event dicts (header validated and skipped)."""
    with open(path) as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path}: empty journal")
        header = json.loads(first)
        if header.get("t") != "journal":
            raise ValueError(f"{path}: missing journal header line")
        if header.get("v") not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"{path}: unsupported journal version {header.get('v')!r}"
            )
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


@dataclasses.dataclass
class _ReplayRunEnd:
    """Shim giving run_end events the RunResult attributes sinks read."""

    completed: bool
    total_steps: int
    sched_consults: int
    crashed: frozenset


def replay_journal(path: str,
                   registry: Optional[MetricsRegistry] = None
                   ) -> MetricsRegistry:
    """Replay a journal's event stream into a metrics registry.

    The events are dispatched through the same sink methods the live
    kernel drives, in the same order the kernel emitted them, so the
    resulting registry matches the live one metric for metric (modulo
    ``sched_consults``, which the kernel observes per consultation but
    the journal stores per run — replay reconstructs the count from the
    ``run_end`` records).
    """
    reg = registry if registry is not None else MetricsRegistry()
    for event in iter_events(path):
        kind = event["t"]
        if kind == "run_start":
            reg.on_run_start(event["protocol"], event["n"],
                             tuple(event["inputs"]))
        elif kind == "step":
            pid = event["pid"]
            if event.get("cf"):
                reg.on_coin_flip(pid, 2)
            if event["op"] == "read":
                if "alts" in event:
                    reg.on_read_choices(pid, event["reg"], event["alts"],
                                        event.get("result"))
                reg.on_read(pid, event["reg"], event.get("result"))
            else:
                reg.on_write(pid, event["reg"], event.get("value"))
            if "dec" in event:
                reg.on_decision(pid, event["dec"], event["act"])
            reg.on_step(event["i"], pid, None, event.get("result"),
                        event.get("dec"))
        elif kind == "crash":
            reg.on_crash(event["pid"], event["i"])
        elif kind == "run_end":
            consults = event.get("consults", 0)
            for i in range(consults):
                reg.on_sched(i + 1)
            reg.on_run_end(_ReplayRunEnd(
                completed=event["completed"],
                total_steps=event["steps"],
                sched_consults=consults,
                crashed=frozenset(event.get("crashed", ())),
            ))
        elif kind == "span":
            # v3 optional spans section: identity/timing metadata, not
            # kernel events — metric replay skips them (iter_spans
            # reads them back).
            continue
        else:
            raise ValueError(f"unknown journal event type {kind!r}")
    return reg


def iter_spans(path: str) -> Iterator[Dict[str, Any]]:
    """Yield the journal's ``span`` records (v3 optional section)."""
    for event in iter_events(path):
        if event.get("t") == "span":
            yield event


# -- integrity verification -------------------------------------------


@dataclasses.dataclass
class JournalVerdict:
    """What :func:`verify_journal` found.

    ``ok`` means the file is a complete journal: valid header, every
    line parseable, no unterminated run.  A truncated tail (the
    mid-line fragment a crashed writer leaves) sets ``truncated`` and
    counts the preceding good lines; a ``run_start`` with no matching
    ``run_end`` sets ``open_runs``.  ``problems`` collects one
    human-readable line per defect.
    """

    path: str
    ok: bool
    version: Optional[int]
    memory: Optional[str]
    events: int
    runs: int
    spans: int
    open_runs: int
    truncated: bool
    problems: List[str]

    def render(self) -> str:
        status = "OK" if self.ok else "DAMAGED"
        lines = [
            f"{self.path}: {status}",
            f"  version:  {self.version} (mem={self.memory})",
            f"  events:   {self.events} ({self.runs} complete runs, "
            f"{self.spans} spans)",
        ]
        for problem in self.problems:
            lines.append(f"  problem:  {problem}")
        return "\n".join(lines)


def verify_journal(path: str) -> JournalVerdict:
    """Inspect a journal file for truncation and structural damage.

    Unlike :func:`replay_journal` this never raises on a damaged file:
    it reads as far as the bytes allow and reports what it found, so a
    crashed writer's partial output (or an orphaned ``.tmp``) can be
    triaged — and everything before the damage is still known-good.
    """
    problems: List[str] = []
    version: Optional[int] = None
    memory: Optional[str] = None
    events = 0
    runs = 0
    spans = 0
    in_run = False
    open_runs = 0
    truncated = False
    known = {"journal", "run_start", "step", "crash", "run_end", "span"}
    try:
        fh = open(path)
    except OSError as exc:
        return JournalVerdict(
            path=path, ok=False, version=None, memory=None, events=0,
            runs=0, spans=0, open_runs=0, truncated=False,
            problems=[f"unreadable: {exc}"],
        )
    with fh:
        for lineno, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            if not line.endswith("\n"):
                # A writer died mid-line: the fragment is not an event.
                truncated = True
                problems.append(
                    f"line {lineno}: truncated tail (no newline)")
                break
            try:
                event = json.loads(stripped)
            except ValueError:
                truncated = True
                problems.append(
                    f"line {lineno}: unparseable JSON tail")
                break
            kind = event.get("t") if isinstance(event, dict) else None
            if lineno == 1:
                if kind != "journal":
                    problems.append("line 1: missing journal header")
                else:
                    version = event.get("v")
                    memory = event.get("mem",
                                       "atomic" if version == 1 else None)
                    if version not in SUPPORTED_VERSIONS:
                        problems.append(
                            f"line 1: unsupported version {version!r}")
                events += 1
                continue
            events += 1
            if kind == "run_start":
                if in_run:
                    open_runs += 1
                    problems.append(
                        f"line {lineno}: run_start inside an open run")
                in_run = True
            elif kind == "run_end":
                if not in_run:
                    problems.append(
                        f"line {lineno}: run_end without run_start")
                else:
                    runs += 1
                in_run = False
            elif kind == "span":
                spans += 1
            elif kind not in known:
                problems.append(
                    f"line {lineno}: unknown event type {kind!r}")
    if events == 0:
        problems.append("empty file")
    if in_run:
        open_runs += 1
        problems.append("unterminated run (run_start without run_end)")
    return JournalVerdict(
        path=path, ok=not problems, version=version, memory=memory,
        events=events, runs=runs, spans=spans, open_runs=open_runs,
        truncated=truncated, problems=problems,
    )

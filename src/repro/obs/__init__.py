"""Kernel-level observability: hooks, metrics, journals, and timers.

The simulation kernel serializes an asynchronous execution into a single
global order of register operations.  Everything the paper quantifies —
steps-to-decide distributions (Theorem 7's tail), coin flips per
decision, the ``num``-field depth of the three-processor protocol
(Theorem 9's (3/4)^k envelope) — is a function of that event stream.

This subpackage makes the stream first-class without making the kernel
slow or memory-hungry:

* :mod:`repro.obs.hooks` — the event protocol (:class:`BaseSink`) and
  the fan-out hub (:class:`ObsHub`) the kernel drives.  With no sinks
  attached the kernel keeps a ``None`` hub and pays only a handful of
  ``is not None`` checks per step.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, a sink holding
  counters, gauges, and integer histograms (p50/p90/p99) that
  aggregates cheaply across millions of steps and thousands of runs.
* :mod:`repro.obs.journal` — :class:`JsonlJournal`, a streaming sink
  writing one bounded JSON record per event; a journal can be replayed
  back into a fresh :class:`MetricsRegistry` to reproduce the exact
  metrics of the live run.
* :mod:`repro.obs.timers` — :class:`PhaseTimer`, a wall-clock profiling
  sink splitting run time into scheduler-choice / kernel-step /
  protocol-transition phases.
"""

from repro.obs.hooks import BaseSink, ObsHub
from repro.obs.journal import (JsonlJournal, concatenate_journals,
                               iter_events, replay_journal)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.timers import PhaseTimer

__all__ = [
    "BaseSink",
    "ObsHub",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlJournal",
    "concatenate_journals",
    "iter_events",
    "replay_journal",
    "PhaseTimer",
]

"""Kernel-level observability: hooks, metrics, journals, and timers.

The simulation kernel serializes an asynchronous execution into a single
global order of register operations.  Everything the paper quantifies —
steps-to-decide distributions (Theorem 7's tail), coin flips per
decision, the ``num``-field depth of the three-processor protocol
(Theorem 9's (3/4)^k envelope) — is a function of that event stream.

This subpackage makes the stream first-class without making the kernel
slow or memory-hungry:

* :mod:`repro.obs.hooks` — the event protocol (:class:`BaseSink`) and
  the fan-out hub (:class:`ObsHub`) the kernel drives.  With no sinks
  attached the kernel keeps a ``None`` hub and pays only a handful of
  ``is not None`` checks per step.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, a sink holding
  counters, gauges, and integer histograms (p50/p90/p99) that
  aggregates cheaply across millions of steps and thousands of runs.
* :mod:`repro.obs.journal` — :class:`JsonlJournal`, a streaming sink
  writing one bounded JSON record per event; a journal can be replayed
  back into a fresh :class:`MetricsRegistry` to reproduce the exact
  metrics of the live run.
* :mod:`repro.obs.timers` — :class:`PhaseTimer`, a wall-clock profiling
  sink splitting run time into scheduler-choice / kernel-step /
  protocol-transition / memory-resolution phases.
* :mod:`repro.obs.tracing` — :class:`Tracer`, an OpenTelemetry-shaped
  span sink whose trace/span ids derive deterministically from the
  run's replay key, so a replay produces the identical trace.
* :mod:`repro.obs.telemetry` — per-shard heartbeats for live batch
  progress (``repro top``); wall-clock only, never part of results.
* :mod:`repro.obs.profiling` — :class:`TimeAttributionProfiler`,
  attributing run wall time to scheduler / transition / memory /
  kernel / hooks components for folded-stack flamegraphs.
* :mod:`repro.obs.export` — Prometheus text, OTLP-style JSON, and
  folded-stack emitters (with strict round-trip parsers).
"""

from repro.obs.export import (folded_stacks, otlp_json, parse_folded,
                              parse_prometheus, prometheus_text)
from repro.obs.hooks import BaseSink, ObsHub
from repro.obs.journal import (JournalVerdict, JsonlJournal,
                               concatenate_journals, iter_events,
                               iter_spans, replay_journal, verify_journal)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import TimeAttributionProfiler, profile_matrix
from repro.obs.telemetry import (Heartbeat, TelemetryEmitter,
                                 read_telemetry, render_top)
from repro.obs.timers import PhaseTimer
from repro.obs.tracing import (Span, Tracer, render_span_tree, span_id_for,
                               trace_id_for)

__all__ = [
    "BaseSink",
    "ObsHub",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlJournal",
    "JournalVerdict",
    "concatenate_journals",
    "iter_events",
    "iter_spans",
    "replay_journal",
    "verify_journal",
    "PhaseTimer",
    "Span",
    "Tracer",
    "trace_id_for",
    "span_id_for",
    "render_span_tree",
    "Heartbeat",
    "TelemetryEmitter",
    "read_telemetry",
    "render_top",
    "TimeAttributionProfiler",
    "profile_matrix",
    "folded_stacks",
    "otlp_json",
    "parse_folded",
    "parse_prometheus",
    "prometheus_text",
]

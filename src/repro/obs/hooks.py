"""The kernel's event-hook protocol and fan-out hub.

Design constraints, in order of priority:

1. **Zero cost when off.**  A :class:`~repro.sim.kernel.Simulation`
   built without sinks keeps ``_obs = None`` and every emission site in
   the hot path collapses to one attribute load and an ``is not None``
   test.  Monte-Carlo batches of millions of steps must not notice the
   instrumentation exists.
2. **Streaming, not retaining.**  Sinks see each event exactly once, in
   the global serialization order the kernel defines; nothing here
   stores events (that is what :class:`~repro.sim.trace.Trace` is for,
   and why it is memory-heavy).
3. **Open protocol.**  Any object implementing a subset of the
   :class:`BaseSink` methods can be attached; unimplemented events are
   inherited no-ops.

Event vocabulary (one method per event, mirroring the kernel):

``on_run_key``      the run's replay coordinates ``(root_seed,
                    run_index)``, delivered by the *runner* (the kernel
                    does not know them) just before ``on_run_start``
``on_run_start``    once per :meth:`Simulation.run` entry
``on_sched``        one scheduler consultation (cumulative count)
``on_coin_flip``    a probabilistic branch was sampled for ``pid``
``on_read_choices`` a weak-memory read had its value resolved from a
                    legal set (>1 choice, or a pre-committed value);
                    emitted just before the matching ``on_read``
``on_read``         a register read, with the value returned
``on_write``        a register write, with the value installed
``on_decision``     ``pid`` entered a decision state at ``activation``
``on_crash``        the scheduler fail-stopped ``pid`` before ``index``
``on_step``         end of one serialized kernel step
``on_run_end``      once per :meth:`Simulation.run` exit
``on_phase_time``   wall-clock span of one phase (timing sinks only)

``on_read_choices`` never fires under the default atomic semantics
(legal sets are singletons and no resolution happens), so pre-PR-4
sinks observe exactly the event streams they always did.

Timing is pull-based: the kernel only reaches for ``perf_counter`` when
some attached sink sets ``wants_timing = True`` (see
:class:`~repro.obs.timers.PhaseTimer`), so metric and journal sinks
never pay for clock reads.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Optional, Sequence, Tuple


class BaseSink:
    """No-op implementation of every kernel event hook.

    Subclass and override the events you care about.  Sinks must not
    mutate anything they are handed (ops and values are the kernel's
    live objects).
    """

    #: Set to True to make the kernel measure phase wall-times and
    #: deliver them via :meth:`on_phase_time`.
    wants_timing: bool = False

    def on_run_key(self, root_seed: int, run_index: int) -> None:
        """The replay coordinates of the run about to start.

        Delivered by :meth:`ExperimentRunner.run_one` (and the
        ``solve`` entry point) before the kernel's ``on_run_start``,
        because only the runner knows which ``(root_seed, run_index)``
        pair seeded the streams.  Sinks that derive deterministic
        identifiers from the key (e.g. the span tracer's trace ids)
        override this; direct :class:`Simulation` users who bypass the
        runner simply never receive it.
        """

    def on_run_start(self, protocol_name: str, n_processes: int,
                     inputs: Tuple[Hashable, ...]) -> None:
        """A run is starting."""

    def on_sched(self, consults: int) -> None:
        """The scheduler was consulted (``consults`` is the running total)."""

    def on_coin_flip(self, pid: int, n_branches: int) -> None:
        """Processor ``pid`` resolved a coin among ``n_branches`` branches."""

    def on_read_choices(self, pid: int, register: str, n_choices: int,
                        chosen: Hashable) -> None:
        """A weak-memory read of ``register`` was resolved by the adversary.

        ``n_choices`` is the size of the legal value set and ``chosen``
        the value picked (also delivered by the following
        :meth:`on_read`).  Never emitted under atomic semantics.
        """

    def on_read(self, pid: int, register: str, value: Hashable) -> None:
        """Processor ``pid`` read ``value`` from ``register``."""

    def on_write(self, pid: int, register: str, value: Hashable) -> None:
        """Processor ``pid`` atomically wrote ``value`` to ``register``."""

    def on_decision(self, pid: int, value: Hashable, activation: int) -> None:
        """Processor ``pid`` decided ``value`` at its ``activation``-th step."""

    def on_crash(self, pid: int, index: int) -> None:
        """The scheduler fail-stopped ``pid`` before global step ``index``."""

    def on_step(self, index: int, pid: int, op, result: Hashable,
                decided: Optional[Hashable]) -> None:
        """One serialized kernel step finished."""

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the :class:`RunResult`."""

    def on_phase_time(self, phase: str, seconds: float) -> None:
        """Wall-clock duration of one ``phase`` (timing sinks only)."""


class ObsHub:
    """Fans kernel events out to a tuple of sinks.

    The kernel holds either ``None`` (nothing attached — the fast path)
    or one hub.  Hub methods are plain loops: with one sink attached
    the cost is one extra call per event, and sinks are free to be as
    cheap or expensive as they like.
    """

    __slots__ = ("sinks", "timing")

    def __init__(self, sinks: Iterable[BaseSink]) -> None:
        self.sinks: Tuple[BaseSink, ...] = tuple(sinks)
        self.timing: bool = any(
            getattr(s, "wants_timing", False) for s in self.sinks
        )

    def __len__(self) -> int:
        return len(self.sinks)

    def run_key(self, root_seed: int, run_index: int) -> None:
        for s in self.sinks:
            s.on_run_key(root_seed, run_index)

    def run_start(self, protocol_name: str, n_processes: int,
                  inputs: Tuple[Hashable, ...]) -> None:
        for s in self.sinks:
            s.on_run_start(protocol_name, n_processes, inputs)

    def sched(self, consults: int) -> None:
        for s in self.sinks:
            s.on_sched(consults)

    def coin_flip(self, pid: int, n_branches: int) -> None:
        for s in self.sinks:
            s.on_coin_flip(pid, n_branches)

    def read_choices(self, pid: int, register: str, n_choices: int,
                     chosen: Hashable) -> None:
        for s in self.sinks:
            s.on_read_choices(pid, register, n_choices, chosen)

    def read(self, pid: int, register: str, value: Hashable) -> None:
        for s in self.sinks:
            s.on_read(pid, register, value)

    def write(self, pid: int, register: str, value: Hashable) -> None:
        for s in self.sinks:
            s.on_write(pid, register, value)

    def decision(self, pid: int, value: Hashable, activation: int) -> None:
        for s in self.sinks:
            s.on_decision(pid, value, activation)

    def crash(self, pid: int, index: int) -> None:
        for s in self.sinks:
            s.on_crash(pid, index)

    def step(self, index: int, pid: int, op, result: Hashable,
             decided: Optional[Hashable]) -> None:
        for s in self.sinks:
            s.on_step(index, pid, op, result, decided)

    def run_end(self, result) -> None:
        for s in self.sinks:
            s.on_run_end(result)

    def phase_time(self, phase: str, seconds: float) -> None:
        for s in self.sinks:
            if getattr(s, "wants_timing", False):
                s.on_phase_time(phase, seconds)


def make_hub(sinks: Optional[Sequence[BaseSink]]) -> Optional[ObsHub]:
    """Build a hub, or ``None`` when there is nothing to notify."""
    if not sinks:
        return None
    return ObsHub(sinks)

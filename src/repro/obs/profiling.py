"""Per-component time attribution — flamegraph fuel.

:class:`~repro.obs.timers.PhaseTimer` answers "how long did each kernel
phase take"; this module answers the budgeting question behind it:
*which component owns each microsecond of a run* — the scheduler (the
adversary), the protocol transition function, the memory model, the
kernel's own bookkeeping, or the observability hooks themselves.

:class:`TimeAttributionProfiler` is a timing sink that folds the
kernel's phase stream into five disjoint components:

``scheduler``   the ``sched`` phase — adversary consultations, crash
                injection, liveness filtering
``transition``  the protocol-automaton part of a step (``branches`` +
                ``observe``), a subset of ``step``
``memory``      weak-memory value resolution (``memory`` phase; zero
                under atomic semantics, where no resolution happens)
``kernel``      the remainder of ``step`` — serialization bookkeeping,
                register access, decision tracking
``hooks``       run wall time not inside ``sched`` or ``step`` — hub
                fan-out, sink work, loop overhead

The components tile the run: their sum equals measured wall time (up to
clock granularity; negative residuals clamp to zero).  Each profiler
carries a frame prefix like ``("two_process", "random", "atomic")`` so
:meth:`stacks` yields folded-stack rows
``protocol;scheduler_name;memory;component`` ready for
:func:`repro.obs.export.folded_stacks`, and :func:`profile_matrix`
sweeps a protocol × scheduler × memory grid into one flamegraph.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.obs.hooks import BaseSink

#: Attribution components, in render order.
COMPONENTS = ("scheduler", "transition", "memory", "kernel", "hooks")


class TimeAttributionProfiler(BaseSink):
    """Timing sink attributing run wall time to stack components.

    Attach one per configuration; the ``frames`` prefix names the
    configuration in folded-stack output.  Attribution is derived, not
    measured twice: ``kernel = step - transition - memory`` and
    ``hooks = run_wall - sched - step``, both clamped at zero (the
    phases nest, so residuals are non-negative up to clock jitter).
    """

    wants_timing = True

    def __init__(self, frames: Sequence[str] = ()) -> None:
        self.frames: Tuple[str, ...] = tuple(frames)
        self.phase_seconds: Dict[str, float] = {}
        self.phase_counts: Dict[str, int] = {}
        self.run_seconds = 0.0
        self.n_runs = 0
        self._run_t0: Optional[float] = None

    # -- sink protocol -------------------------------------------------

    def on_phase_time(self, phase: str, seconds: float) -> None:
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) \
            + seconds
        self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1

    def on_run_start(self, protocol_name: str, n_processes: int,
                     inputs: Tuple[Hashable, ...]) -> None:
        self._run_t0 = time.perf_counter()

    def on_run_end(self, result) -> None:
        if self._run_t0 is not None:
            self.run_seconds += time.perf_counter() - self._run_t0
            self._run_t0 = None
        self.n_runs += 1

    # -- attribution ---------------------------------------------------

    def components(self) -> Dict[str, float]:
        """Seconds per component; keys are :data:`COMPONENTS`."""
        sched = self.phase_seconds.get("sched", 0.0)
        step = self.phase_seconds.get("step", 0.0)
        transition = self.phase_seconds.get("transition", 0.0)
        memory = self.phase_seconds.get("memory", 0.0)
        return {
            "scheduler": sched,
            "transition": transition,
            "memory": memory,
            "kernel": max(0.0, step - transition - memory),
            "hooks": max(0.0, self.run_seconds - sched - step),
        }

    def stacks(self) -> List[Tuple[Tuple[str, ...], float]]:
        """Folded-stack rows: ``frames + (component,) -> seconds``."""
        return [(self.frames + (name,), seconds)
                for name, seconds in self.components().items()
                if seconds > 0.0]

    def merge(self, other: "TimeAttributionProfiler") -> None:
        """Fold another profiler (same frames) in; durations add."""
        if other.frames != self.frames:
            raise ValueError(
                f"cannot merge profiler for {other.frames} into "
                f"{self.frames}")
        for phase, seconds in other.phase_seconds.items():
            self.phase_seconds[phase] = \
                self.phase_seconds.get(phase, 0.0) + seconds
        for phase, count in other.phase_counts.items():
            self.phase_counts[phase] = \
                self.phase_counts.get(phase, 0) + count
        self.run_seconds += other.run_seconds
        self.n_runs += other.n_runs

    def to_dict(self) -> Dict[str, object]:
        return {
            "frames": list(self.frames),
            "runs": self.n_runs,
            "run_seconds": self.run_seconds,
            "components": self.components(),
        }

    def render(self) -> str:
        comps = self.components()
        total = sum(comps.values()) or 1.0
        head = ";".join(self.frames) if self.frames else "(all)"
        lines = [f"{head}: {self.n_runs} runs, "
                 f"{self.run_seconds * 1e3:.2f}ms wall"]
        for name in COMPONENTS:
            seconds = comps[name]
            lines.append(f"  {name:<10}  {seconds * 1e6:10.1f}us  "
                         f"{100.0 * seconds / total:5.1f}%")
        return "\n".join(lines)


def profile_matrix(configs: Iterable[Dict], runs: int = 20,
                   max_steps: int = 2000,
                   root_seed: int = 2026) -> List[TimeAttributionProfiler]:
    """Profile a grid of configurations, one profiler per cell.

    ``configs`` is an iterable of keyword dicts for
    :class:`repro.sim.runner.ExperimentRunner` — each must carry
    ``protocol_factory`` / ``scheduler_factory`` / ``inputs_factory``
    and may carry ``memory``, ``seed`` (default ``root_seed``), or a
    ``frames`` tuple naming the cell explicitly.  Without ``frames``
    the cell is named from the protocol's ``name`` attribute, the
    scheduler factory's name, and the memory spec, so the folded
    output distinguishes every cell.  Feed the concatenated
    :meth:`~TimeAttributionProfiler.stacks` to
    :func:`repro.obs.export.folded_stacks` for a flamegraph.
    """
    # Imported here: repro.obs must stay importable from the kernel
    # without dragging the runner (and the kernel itself) back in.
    from repro.sim.runner import ExperimentRunner

    profilers: List[TimeAttributionProfiler] = []
    for overrides in configs:
        kwargs = dict(overrides)
        frames = kwargs.pop("frames", None)
        kwargs.setdefault("seed", root_seed)
        if frames is None:
            protocol = kwargs["protocol_factory"]()
            sched_factory = kwargs["scheduler_factory"]
            frames = (
                getattr(protocol, "name", type(protocol).__name__),
                getattr(sched_factory, "__name__",
                        type(sched_factory).__name__),
                str(kwargs.get("memory") or "atomic"),
            )
        profiler = TimeAttributionProfiler(tuple(frames))
        runner = ExperimentRunner(sinks=[profiler], **kwargs)
        runner.run_many(runs, max_steps=max_steps)
        profilers.append(profiler)
    return profilers


def matrix_stacks(profilers: Iterable[TimeAttributionProfiler],
                  ) -> List[Tuple[Tuple[str, ...], float]]:
    """Concatenate every profiler's folded-stack rows."""
    out: List[Tuple[Tuple[str, ...], float]] = []
    for profiler in profilers:
        out.extend(profiler.stacks())
    return out

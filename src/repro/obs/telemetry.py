"""Live sweep telemetry: per-shard heartbeats for long batches.

A 10^5-run adversary sweep sharded over eight workers is silent for
minutes at a time; the only signal used to be the OS process table.
This module gives each shard a pulse.  Workers carry a
:class:`TelemetryEmitter` that observes every finished run and emits a
:class:`Heartbeat` every ~1% of its shard (and once at the end):
runs done, cumulative kernel steps, throughput, an ETA, and a rolling
tail snapshot of the ``run_steps`` distribution (p50/p90/p99/max plus
how many runs arrived since the previous beat).

Transport is deliberately dumb: heartbeats cross process boundaries as
dicts on a ``multiprocessing`` manager queue (see
:mod:`repro.parallel.engine`), and the parent appends them to a JSONL
*telemetry file* — which makes the live feed replayable, greppable,
and consumable by the ``repro top`` follower (:func:`render_top`)
from another terminal while the sweep is still running.

Heartbeats are observability, not science: they carry wall-clock
rates, so two telemetry files from the same seeded sweep differ even
though the sweep's *results* are bit-identical.  Nothing here feeds
back into the kernel.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.obs.metrics import Histogram


@dataclasses.dataclass
class Heartbeat:
    """One progress pulse from one shard.

    ``tail`` summarizes the shard's ``run_steps`` histogram *so far*:
    ``{"p50", "p90", "p99", "max", "new"}`` where ``new`` counts runs
    folded in since the previous beat (the delta, so a follower can
    spot a stalled shard whose beats still arrive but carry no work).
    ``eta_s`` is ``None`` until the shard has enough signal to
    extrapolate.
    """

    shard: int
    runs_done: int
    runs_total: int
    steps: int
    elapsed_s: float
    steps_per_s: float
    eta_s: Optional[float]
    done: bool
    tail: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Heartbeat":
        return cls(**{f.name: d[f.name]
                      for f in dataclasses.fields(cls)})


class TelemetryEmitter:
    """Per-shard heartbeat source; lives inside the worker.

    ``sink`` is any callable taking a heartbeat *dict* — a manager
    queue's ``put`` in sharded sweeps, a file-appender in serial ones.
    ``every`` is the emission stride in runs (default ~1% of the
    shard, at least 1); the final :meth:`finish` beat always fires, so
    even a tiny shard reports exactly once.
    """

    def __init__(self, shard: int, runs_total: int,
                 sink: Callable[[Dict[str, Any]], None],
                 every: Optional[int] = None,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.shard = shard
        self.runs_total = runs_total
        self._sink = sink
        self._every = every if every else max(1, runs_total // 100)
        self._clock = clock
        self._t0 = clock()
        self.runs_done = 0
        self.steps = 0
        self._hist = Histogram()
        self._last_beat_runs = 0

    def record_run(self, total_steps: int) -> None:
        """Fold one finished run in; emit on the stride boundary."""
        self.runs_done += 1
        self.steps += total_steps
        self._hist.observe(total_steps)
        if self.runs_done % self._every == 0 \
                and self.runs_done < self.runs_total:
            self._emit(done=False)

    def finish(self) -> None:
        """Emit the shard's final (``done=True``) heartbeat."""
        self._emit(done=True)

    def _emit(self, done: bool) -> None:
        elapsed = max(self._clock() - self._t0, 1e-9)
        rate = self.runs_done / elapsed
        eta = ((self.runs_total - self.runs_done) / rate
               if self.runs_done and not done else None)
        beat = Heartbeat(
            shard=self.shard,
            runs_done=self.runs_done,
            runs_total=self.runs_total,
            steps=self.steps,
            elapsed_s=elapsed,
            steps_per_s=self.steps / elapsed,
            eta_s=eta,
            done=done,
            tail={
                "p50": self._hist.p50,
                "p90": self._hist.p90,
                "p99": self._hist.p99,
                "max": self._hist.maximum,
                "new": self.runs_done - self._last_beat_runs,
            },
        )
        self._last_beat_runs = self.runs_done
        self._sink(beat.to_dict())


def file_sink(fh) -> Callable[[Dict[str, Any]], None]:
    """A heartbeat sink appending JSONL lines to an open file.

    Each line is flushed immediately so a follower tailing the file
    sees beats as they happen, not at buffer boundaries.
    """
    def _append(d: Dict[str, Any]) -> None:
        fh.write(json.dumps(d, sort_keys=True) + "\n")
        fh.flush()
    return _append


def read_telemetry(path: str) -> List[Heartbeat]:
    """Load every complete heartbeat from a telemetry JSONL file.

    A trailing partial line (the emitter mid-write) is skipped, not an
    error — the follower polls files that are still being appended.
    Supervisor event records (``{"kind": ...}`` lines interleaved by
    :mod:`repro.parallel.supervisor`) are skipped, not heartbeats;
    read them with :func:`read_fault_events`.
    """
    beats: List[Heartbeat] = []
    with open(path) as fh:
        for line in fh:
            if not line.endswith("\n"):
                break
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
                if isinstance(doc, dict) and "kind" in doc:
                    continue
                beats.append(Heartbeat.from_dict(doc))
            except (ValueError, KeyError, TypeError):
                break
    return beats


def read_fault_events(path: str) -> List[Dict[str, Any]]:
    """Load the supervisor's fault records from a telemetry file.

    The supervisor (:mod:`repro.parallel.supervisor`) interleaves
    ``{"kind": "fault", "shard": ..., "attempt": ..., "fault": ...,
    "action": ...}`` records among the heartbeats.  Same
    partial-trailing-line tolerance as :func:`read_telemetry`.
    """
    events: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            if not line.endswith("\n"):
                break
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                break
            if isinstance(doc, dict) and doc.get("kind") == "fault":
                events.append(doc)
    return events


def latest_by_shard(beats: Iterable[Heartbeat]) -> Dict[int, Heartbeat]:
    """The most recent heartbeat per shard (file order = time order)."""
    latest: Dict[int, Heartbeat] = {}
    for beat in beats:
        latest[beat.shard] = beat
    return latest


def _fmt_tail(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "-"
    if eta_s >= 3600:
        return f"{eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"{eta_s / 60:.1f}m"
    return f"{eta_s:.1f}s"


def render_top(beats: Iterable[Heartbeat],
               fault_events: Optional[List[Dict[str, Any]]] = None) -> str:
    """Render the ``repro top`` table: one row per shard plus totals.

    Takes the full beat list (e.g. :func:`read_telemetry` output) and
    shows each shard's latest state — progress, throughput, ETA, and
    the current ``run_steps`` tail — with an aggregate footer.

    ``fault_events`` (e.g. :func:`read_fault_events` output, for
    supervised sweeps) adds a ``faults`` column counting the faults
    each shard absorbed — ``3!`` flags a shard whose latest fault was
    a quarantine.  ``None`` (the default, and any unsupervised sweep)
    renders the classic table unchanged.
    """
    latest = latest_by_shard(beats)
    faults_by_shard: Dict[int, int] = {}
    quarantined: set = set()
    for event in (fault_events or []):
        shard = event.get("shard")
        if not isinstance(shard, int) or shard < 0:
            continue
        faults_by_shard[shard] = faults_by_shard.get(shard, 0) + 1
        if event.get("action") == "quarantine":
            quarantined.add(shard)
    if not latest and not faults_by_shard:
        return "(no heartbeats yet)"
    with_faults = fault_events is not None

    def _fault_cell(shard: int) -> str:
        n = faults_by_shard.get(shard, 0)
        return f"{n}{'!' if shard in quarantined else ''}"

    fault_header = f"  {'faults':>6}" if with_faults else ""
    header = (f"{'shard':>5}  {'runs':>13}  {'%':>5}  {'steps/s':>10}  "
              f"{'eta':>6}  {'p50':>6}  {'p99':>6}  {'max':>6}"
              f"{fault_header}  state")
    lines = [header]
    for shard in sorted(set(latest) | set(faults_by_shard)):
        b = latest.get(shard)
        fault_cell = f"  {_fault_cell(shard):>6}" if with_faults else ""
        if b is None:
            # A shard that faulted before its first heartbeat (e.g.
            # crash-at-start): all progress columns are unknowns.
            lines.append(
                f"{shard:>5}  {'-':>13}  {'-':>5}  {'-':>10}  {'-':>6}  "
                f"{'-':>6}  {'-':>6}  {'-':>6}{fault_cell}  "
                f"{'quarantined' if shard in quarantined else 'faulted'}"
            )
            continue
        pct = 100.0 * b.runs_done / b.runs_total if b.runs_total else 0.0
        tail = b.tail or {}
        state = 'done' if b.done else 'running'
        if shard in quarantined:
            state = 'quarantined'
        lines.append(
            f"{shard:>5}  {b.runs_done:>6}/{b.runs_total:<6}  "
            f"{pct:>5.1f}  {b.steps_per_s:>10.0f}  "
            f"{_fmt_eta(b.eta_s):>6}  "
            f"{_fmt_tail(tail.get('p50')):>6}  "
            f"{_fmt_tail(tail.get('p99')):>6}  "
            f"{_fmt_tail(tail.get('max')):>6}"
            f"{fault_cell}  "
            f"{state}"
        )
    runs_done = sum(b.runs_done for b in latest.values())
    runs_total = sum(b.runs_total for b in latest.values())
    steps = sum(b.steps for b in latest.values())
    rate = sum(b.steps_per_s for b in latest.values() if not b.done)
    all_done = all(b.done for b in latest.values()) if latest else False
    pct = 100.0 * runs_done / runs_total if runs_total else 0.0
    total_faults = sum(faults_by_shard.values())
    fault_cell = f"  {total_faults:>6}" if with_faults else ""
    lines.append(
        f"{'all':>5}  {runs_done:>6}/{runs_total:<6}  {pct:>5.1f}  "
        f"{rate:>10.0f}  {'-':>6}  {'':>6}  {'':>6}  {'':>6}"
        f"{fault_cell}  "
        f"{'done' if all_done else 'running'} "
        f"({steps} steps total)"
    )
    return "\n".join(lines)

"""Exporters: Prometheus text, OTLP-style JSON, and folded stacks.

The observability layer's native containers — a
:class:`~repro.obs.metrics.MetricsRegistry`, a list of
:class:`~repro.obs.tracing.Span` records, a
:class:`~repro.obs.profiling.ComponentProfile` — are Python objects.
This module turns them into the three interchange formats the wider
tooling world already speaks:

* **Prometheus text exposition** (:func:`prometheus_text`) — counters
  become ``_total`` counters, gauges become gauges, and the exact-count
  histograms become classic cumulative ``le``-bucket histograms (one
  bucket per distinct observed value, so nothing is approximated).
* **OTLP-style JSON** (:func:`otlp_json`) — ``resourceMetrics`` /
  ``resourceSpans`` shaped like the OpenTelemetry protocol's JSON
  encoding, with logical span times carried as nanoseconds.
* **Folded stacks** (:func:`folded_stacks`) — one
  ``frame;frame;frame value`` line per component path, the input format
  of every flamegraph renderer; values are integer microseconds.

Each emitter has a matching strict parser (:func:`parse_prometheus`,
:func:`parse_folded`) used by the round-trip tests — the exporters are
only trustworthy if their output survives independent re-parsing.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)
_PROM_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')


def _prom_name(name: str, prefix: str) -> str:
    return prefix + _NAME_RE.sub("_", name)


def _prom_number(x: Any) -> str:
    if isinstance(x, bool):  # pragma: no cover - no bool metrics exist
        return "1" if x else "0"
    if isinstance(x, float) and x == int(x):
        return str(int(x))
    return repr(x) if isinstance(x, float) else str(x)


def prometheus_text(registry, prefix: str = "repro_") -> str:
    """Render a :class:`MetricsRegistry` in Prometheus text format.

    Counters are exported as ``<prefix><name>_total``; histograms emit
    the full cumulative bucket series — one ``le`` bucket per distinct
    observed value plus ``+Inf`` — alongside ``_sum`` and ``_count``,
    so a Prometheus scrape reconstructs the *exact* distribution (the
    native histograms are exact counts, not pre-bucketed).
    """
    lines: List[str] = []
    for name in sorted(registry.counters):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {registry.counters[name].value}")
    for name in sorted(registry.gauges):
        gauge = registry.gauges[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        value = gauge.value if gauge.value is not None else "NaN"
        lines.append(f"{metric} {value}")
    for name in sorted(registry.histograms):
        hist = registry.histograms[name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for value in sorted(hist.counts):
            cumulative += hist.counts[value]
            lines.append(
                f'{metric}_bucket{{le="{_prom_number(value)}"}} '
                f"{cumulative}")
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.total}')
        lines.append(f"{metric}_sum {hist._sum}")
        lines.append(f"{metric}_count {hist.total}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Any]:
    """Strict parser for the Prometheus text exposition format.

    Returns ``{"types": {metric: type}, "samples": [(name, labels,
    value)]}``; raises :class:`ValueError` on any malformed line, and
    verifies every histogram's bucket series is cumulative and
    consistent with its ``_count``.  This is the round-trip checker the
    exporter tests drive — deliberately unforgiving.
    """
    types: Dict[str, str] = {}
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE comment")
            if parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(
                    f"line {lineno}: unknown metric type {parts[3]!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _PROM_LINE_RE.match(line)
        if m is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        labels: Dict[str, str] = {}
        if m.group("labels"):
            for pair in m.group("labels").split(","):
                lm = _PROM_LABEL_RE.match(pair)
                if lm is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}")
                labels[lm.group(1)] = lm.group(2)
        raw = m.group("value")
        value = float("nan") if raw == "NaN" else float(raw)
        samples.append((m.group("name"), labels, value))
    # Histogram invariants: buckets cumulative, +Inf == _count.
    for metric, mtype in types.items():
        if mtype != "histogram":
            continue
        buckets = [(labels["le"], value) for name, labels, value in samples
                   if name == f"{metric}_bucket"]
        counts = [value for name, _, value in samples
                  if name == f"{metric}_count"]
        if not buckets or not counts:
            raise ValueError(f"{metric}: missing buckets or _count")
        series = [v for _, v in buckets]
        if series != sorted(series):
            raise ValueError(f"{metric}: bucket series not cumulative")
        if buckets[-1][0] != "+Inf" or buckets[-1][1] != counts[0]:
            raise ValueError(f"{metric}: +Inf bucket != _count")
    return {"types": types, "samples": samples}


# -- OTLP-style JSON ---------------------------------------------------


def _otlp_value(x: Any) -> Dict[str, Any]:
    if isinstance(x, bool):
        return {"boolValue": x}
    if isinstance(x, int):
        return {"intValue": str(x)}
    if isinstance(x, float):
        return {"doubleValue": x}
    return {"stringValue": str(x)}


def _otlp_attrs(attrs: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [{"key": k, "value": _otlp_value(v)}
            for k, v in sorted(attrs.items())]


def otlp_json(registry=None, spans: Sequence = None,
              resource: Optional[Dict[str, Any]] = None,
              time_unit_ns: int = 1000) -> Dict[str, Any]:
    """OTLP-shaped JSON document for a registry and/or a span list.

    ``spans`` are :class:`~repro.obs.tracing.Span` objects (or their
    dicts); their logical step timestamps are scaled by
    ``time_unit_ns`` into the nanosecond fields OTLP mandates, so a
    10-step run reads as 10 us on any OTLP viewer while staying fully
    deterministic.  The document carries ``resourceSpans`` and/or
    ``resourceMetrics`` top-level keys, shaped like the OTLP JSON
    encoding (scope name ``repro.obs``).
    """
    resource_attrs = _otlp_attrs(resource or {"service.name": "repro"})
    doc: Dict[str, Any] = {}
    if spans is not None:
        otlp_spans = []
        for span in spans:
            d = span if isinstance(span, dict) else span.to_dict()
            entry = {
                "traceId": d["trace_id"],
                "spanId": d["span_id"],
                "name": d["name"],
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": str(d["start"] * time_unit_ns),
                "endTimeUnixNano": str(d["end"] * time_unit_ns),
                "attributes": _otlp_attrs(d.get("attrs", {})),
            }
            if d.get("parent_id"):
                entry["parentSpanId"] = d["parent_id"]
            otlp_spans.append(entry)
        doc["resourceSpans"] = [{
            "resource": {"attributes": resource_attrs},
            "scopeSpans": [{
                "scope": {"name": "repro.obs"},
                "spans": otlp_spans,
            }],
        }]
    if registry is not None:
        metrics = []
        for name in sorted(registry.counters):
            metrics.append({
                "name": name,
                "sum": {
                    "aggregationTemporality": 2,  # CUMULATIVE
                    "isMonotonic": True,
                    "dataPoints": [
                        {"asInt": str(registry.counters[name].value)}
                    ],
                },
            })
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            metrics.append({
                "name": name,
                "gauge": {"dataPoints": [
                    {"asDouble": float(gauge.value)}
                    if gauge.value is not None else {}
                ]},
            })
        for name in sorted(registry.histograms):
            hist = registry.histograms[name]
            bounds = sorted(hist.counts)
            cumulative, buckets = 0, []
            for value in bounds:
                cumulative += hist.counts[value]
                buckets.append(cumulative)
            metrics.append({
                "name": name,
                "histogram": {
                    "aggregationTemporality": 2,
                    "dataPoints": [{
                        "count": str(hist.total),
                        "sum": float(hist._sum),
                        "explicitBounds": [float(b) for b in bounds],
                        "bucketCounts": [str(b) for b in buckets],
                    }],
                },
            })
        doc["resourceMetrics"] = [{
            "resource": {"attributes": resource_attrs},
            "scopeMetrics": [{
                "scope": {"name": "repro.obs"},
                "metrics": metrics,
            }],
        }]
    return doc


def otlp_json_text(registry=None, spans: Sequence = None, **kw) -> str:
    """:func:`otlp_json`, serialized (stable key order)."""
    return json.dumps(otlp_json(registry=registry, spans=spans, **kw),
                      sort_keys=True, indent=2)


# -- folded stacks (flamegraphs) ---------------------------------------


def folded_stacks(stacks: Iterable[Tuple[Sequence[str], float]]) -> str:
    """Render ``(frames, seconds)`` pairs in folded-stack format.

    One ``frame;frame;frame value`` line per stack, values in integer
    microseconds — the exact input of ``flamegraph.pl`` and every
    speedscope-style viewer.  Frames must not contain ``;`` or spaces
    (enforced: both would corrupt the format), and zero-microsecond
    stacks are dropped (folded format forbids zero counts).
    """
    lines: List[str] = []
    for frames, seconds in stacks:
        for frame in frames:
            if ";" in frame or " " in frame:
                raise ValueError(
                    f"frame {frame!r} contains a folded-format "
                    f"delimiter (';' or space)")
        us = round(seconds * 1e6)
        if us <= 0:
            continue
        lines.append(";".join(frames) + f" {us}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> List[Tuple[Tuple[str, ...], int]]:
    """Strict parser for folded-stack text (the round-trip checker)."""
    out: List[Tuple[Tuple[str, ...], int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            raise ValueError(f"line {lineno}: malformed folded line")
        if not value.isdigit():
            raise ValueError(
                f"line {lineno}: non-integer sample count {value!r}")
        frames = tuple(stack.split(";"))
        if any(not f for f in frames):
            raise ValueError(f"line {lineno}: empty frame")
        out.append((frames, int(value)))
    return out

"""OpenTelemetry-shaped span tracing for simulation runs.

Metrics (:mod:`repro.obs.metrics`) answer *how much*; spans answer
*where and in what order*.  A span is one timed, named, attributed
interval with a parent — the OpenTelemetry data model — and a run's
spans form a tree: one ``run`` root, one ``sched`` child per scheduler
consultation, one ``step`` child per kernel step, a ``memory.resolve``
child under any step whose weak-memory read the adversary resolved, and
(from the checker) ``checker.explore`` spans around BFS expansions.

Two properties make these traces useful for a *reproduction*:

**Deterministic identity.**  Trace and span ids are derived from the
run's replay key through the same SplitMix64 mixer that seeds the run
itself: ``trace_id = derive_seed(root_seed, "trace", run_index)`` (two
64-bit lanes, 32 hex chars, OTel-sized) and the *n*-th span of a trace
gets ``span_id = derive_seed(trace_seed, "span", n)`` (16 hex chars).
Replaying ``(root_seed, run_index)`` therefore reproduces the exact
same ids — traces can be diffed, cached, and referenced across
machines, which wall-clock-derived ids never allow.

**Deterministic time by default.**  Span ``start``/``end`` are logical
timestamps — the kernel step index at which the interval opened and
closed — so two replays of one seeded run produce byte-identical span
trees.  Pass ``clock=time.perf_counter`` to additionally record wall
durations (``wall_us`` attribute); the ids and logical times stay
deterministic either way.

The tracer is an ordinary :class:`~repro.obs.hooks.BaseSink`: attaching
it routes the kernel through the instrumented step path (exactly like
attaching a metrics registry) and **cannot perturb the run** — the
differential suite in ``tests/test_obs_tracing.py`` pins results,
journal bytes, and per-processor RNG draw counts with and without a
tracer attached.  With no tracer (and no other sink) attached the
kernel keeps its inlined no-hub hot path; tracing costs nothing when
off.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.obs.hooks import BaseSink
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.rng import derive_seed


def trace_id_for(root_seed: int, run_index: int) -> str:
    """The 32-hex-char (128-bit) trace id of run ``(root_seed, run_index)``.

    Pure function of the replay key — every component (tracer, CLI,
    exporters, tests) derives the same id independently.
    """
    hi = derive_seed(root_seed, "trace", run_index)
    lo = derive_seed(root_seed, "trace", run_index, 1)
    return f"{hi:016x}{lo:016x}"


def span_id_for(root_seed: int, run_index: int, ordinal: int) -> str:
    """The 16-hex-char id of the ``ordinal``-th span in a run's trace."""
    seed = derive_seed(root_seed, "trace", run_index)
    return f"{derive_seed(seed, 'span', ordinal):016x}"


@dataclasses.dataclass
class Span:
    """One node of a trace tree (OpenTelemetry-shaped).

    ``start`` and ``end`` are logical timestamps: the kernel step index
    when the span opened/closed (scheduler consultations open before
    the step they produce executes, so a ``sched`` span's interval is
    ``[i, i]`` for the step ``i`` it chose).  ``attrs`` holds flat
    JSON-able key/values; wall-clock durations, when a clock was
    supplied, appear there as ``wall_us``.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    kind: str
    start: int
    end: int
    attrs: Dict[str, Any] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (also the journal's ``span`` event payload)."""
        out: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            name=d["name"],
            kind=d["kind"],
            start=d["start"],
            end=d["end"],
            attrs=dict(d.get("attrs", {})),
        )


class Tracer(BaseSink):
    """Kernel sink building one deterministic span tree per run.

    Parameters
    ----------
    clock:
        Optional callable returning seconds (e.g.
        ``time.perf_counter``).  When given, spans carry a ``wall_us``
        attribute; ids and logical times stay deterministic regardless.
        Default ``None`` keeps traces fully replay-identical.
    max_spans:
        Per-run span budget (OTel-style span limit).  Steps beyond the
        budget are counted, not recorded — ``dropped`` lands on the run
        span's attributes — so tracing an adversarial 100k-step run
        cannot exhaust memory.  The ``run`` root is always kept.
    journal:
        Optional :class:`~repro.obs.journal.JsonlJournal`; each
        finished run's spans are appended to it as ``{"t": "span"}``
        lines (journal schema v3's optional spans section).

    Finished spans accumulate on :attr:`spans` across the tracer's
    lifetime; :meth:`trace` filters one run's tree back out.
    """

    def __init__(self, clock=None, max_spans: int = 4096,
                 journal=None) -> None:
        self.spans: List[Span] = []
        self.dropped = 0
        self._clock = clock
        self._max_spans = max_spans
        self._journal = journal
        # Replay key; refreshed by on_run_key, else synthesized from a
        # sequential run counter so direct Simulation use still traces.
        self._root_seed = 0
        self._run_index = 0
        self._have_key = False
        self._runs_seen = 0
        # Per-run state.
        self._trace_id = ""
        self._ordinal = 0
        self._run_span: Optional[Span] = None
        self._run_dropped = 0
        self._step_index = 0
        self._pending: Dict[str, Any] = {}
        self._pending_children: List[Span] = []
        self._t_run0 = 0.0
        self._t_step0 = 0.0

    # -- identity ------------------------------------------------------

    def _next_span(self, name: str, kind: str, parent: Optional[str],
                   start: int, end: int,
                   attrs: Optional[Dict[str, Any]] = None) -> Span:
        span = Span(
            trace_id=self._trace_id,
            span_id=span_id_for(self._root_seed, self._run_index,
                                self._ordinal),
            parent_id=parent,
            name=name,
            kind=kind,
            start=start,
            end=end,
            attrs=attrs or {},
        )
        self._ordinal += 1
        return span

    def _keep(self, span: Span) -> None:
        # Budget counts per-run spans; the run root is reserved slot 0.
        if self._ordinal - 1 < self._max_spans:
            self.spans.append(span)
        else:
            self._run_dropped += 1

    def _ensure_run(self) -> Span:
        """Open a synthetic run span for runs driven step-by-step.

        Normal runs get their root from ``on_run_start``; direct
        ``sim.step()`` loops never emit it, and the tree still needs a
        root to hang spans off.
        """
        if self._run_span is None:
            self.on_run_start("(unknown)", 0, ())
        return self._run_span

    # -- sink protocol -------------------------------------------------

    def on_run_key(self, root_seed: int, run_index: int) -> None:
        self._root_seed = root_seed
        self._run_index = run_index
        self._have_key = True

    def on_run_start(self, protocol_name: str, n_processes: int,
                     inputs: Tuple[Hashable, ...]) -> None:
        if not self._have_key:
            # Keyless runs (direct Simulation use): synthesize a stable
            # key from the attachment-order run count.
            self._root_seed = 0
            self._run_index = self._runs_seen
        self._have_key = False
        self._runs_seen += 1
        self._trace_id = trace_id_for(self._root_seed, self._run_index)
        self._ordinal = 0
        self._step_index = 0
        self._run_dropped = 0
        self._pending = {}
        self._pending_children = []
        run_span = self._next_span(
            "run", "run", None, 0, 0,
            attrs={
                "protocol": protocol_name,
                "n": n_processes,
                "root_seed": self._root_seed,
                "run_index": self._run_index,
            },
        )
        self._run_span = run_span
        self.spans.append(run_span)
        if self._clock is not None:
            self._t_run0 = self._clock()

    def on_sched(self, consults: int) -> None:
        span = self._next_span(
            "sched", "sched", self._ensure_run().span_id,
            self._step_index, self._step_index,
            attrs={"consult": consults},
        )
        self._keep(span)
        if self._clock is not None:
            self._t_step0 = self._clock()

    def on_coin_flip(self, pid: int, n_branches: int) -> None:
        self._pending["coin_branches"] = n_branches

    def on_read_choices(self, pid: int, register: str, n_choices: int,
                        chosen: Hashable) -> None:
        # Child of the step span being assembled; parent id is the
        # *next* ordinal's id only after the step closes, so buffer it
        # and fix the parent when the step span materializes.
        span = self._next_span(
            "memory.resolve", "memory", None,
            self._step_index, self._step_index,
            attrs={"register": register, "choices": n_choices,
                   "pid": pid},
        )
        self._pending_children.append(span)

    def on_read(self, pid: int, register: str, value: Hashable) -> None:
        self._pending["op"] = "read"
        self._pending["register"] = register

    def on_write(self, pid: int, register: str, value: Hashable) -> None:
        self._pending["op"] = "write"
        self._pending["register"] = register

    def on_decision(self, pid: int, value: Hashable, activation: int) -> None:
        self._pending["decided"] = True
        self._pending["activation"] = activation

    def on_crash(self, pid: int, index: int) -> None:
        span = self._next_span(
            "crash", "sched", self._ensure_run().span_id, index, index,
            attrs={"pid": pid},
        )
        self._keep(span)

    def on_step(self, index: int, pid: int, op, result: Hashable,
                decided: Optional[Hashable]) -> None:
        attrs: Dict[str, Any] = {"pid": pid}
        attrs.update(self._pending)
        if "op" not in attrs:
            # Defensive: classify from the op object if read/write
            # hooks were not seen (custom replay paths).
            if isinstance(op, ReadOp):
                attrs["op"] = "read"
            elif isinstance(op, WriteOp):
                attrs["op"] = "write"
        if self._clock is not None:
            attrs["wall_us"] = (self._clock() - self._t_step0) * 1e6
        span = self._next_span("step", "step", self._ensure_run().span_id,
                               index, index + 1, attrs)
        self._pending = {}
        for child in self._pending_children:
            child.parent_id = span.span_id
            self._keep(child)
        self._pending_children = []
        self._keep(span)
        self._step_index = index + 1

    def on_run_end(self, result) -> None:
        run_span = self._run_span
        if run_span is None:  # pragma: no cover - defensive
            return
        run_span.end = result.total_steps
        run_span.attrs["completed"] = bool(result.completed)
        run_span.attrs["consults"] = result.sched_consults
        run_span.attrs["memory"] = getattr(result, "memory", "atomic")
        if self._run_dropped:
            run_span.attrs["dropped"] = self._run_dropped
            self.dropped += self._run_dropped
        if self._clock is not None:
            run_span.attrs["wall_us"] = (self._clock() - self._t_run0) * 1e6
        if self._journal is not None:
            start = len(self.spans)
            while start and self.spans[start - 1].trace_id \
                    == run_span.trace_id:
                start -= 1
            self._journal.append_spans(self.spans[start:])
        self._run_span = None

    # -- non-kernel spans ----------------------------------------------

    def record_explore(self, protocol_name: str, n_configs: int,
                       n_edges: int, depth: int, complete: bool,
                       seconds: Optional[float] = None,
                       n_frontier: Optional[int] = None) -> Span:
        """Record a ``checker.explore`` span for one BFS exploration.

        The checker is not a kernel run, so this span is its trace's
        root; logical time is the BFS depth reached (``[0..depth)``).
        Identity follows the same key rules as runs: a preceding
        ``on_run_key`` pins the trace id, otherwise one is synthesized
        from the tracer's sequential counter.  ``seconds`` (measured by
        the caller) lands as ``wall_us`` only when the tracer was built
        with a clock, keeping default traces replay-identical.
        ``n_frontier`` is the number of unexpanded configurations left
        behind by a budget-truncated search (0 when exhaustive).
        """
        if not self._have_key:
            self._root_seed = 0
            self._run_index = self._runs_seen
        self._have_key = False
        self._runs_seen += 1
        self._trace_id = trace_id_for(self._root_seed, self._run_index)
        self._ordinal = 0
        attrs: Dict[str, Any] = {
            "protocol": protocol_name,
            "configs": n_configs,
            "visited": n_configs,
            "edges": n_edges,
            "complete": complete,
        }
        if n_frontier is not None:
            attrs["frontier"] = n_frontier
        if self._clock is not None and seconds is not None:
            attrs["wall_us"] = seconds * 1e6
        span = self._next_span("checker.explore", "checker", None,
                               0, depth, attrs)
        self.spans.append(span)
        return span

    # -- queries -------------------------------------------------------

    def trace(self, trace_id: Optional[str] = None) -> List[Span]:
        """Spans of one trace (default: the most recent run's)."""
        if trace_id is None:
            if not self.spans:
                return []
            trace_id = self.spans[-1].trace_id
        return [s for s in self.spans if s.trace_id == trace_id]


def render_span_tree(spans: List[Span]) -> str:
    """Indented tree view of one trace's spans.

    Children print under their parents in span order; logical times
    show as ``[start..end)`` step intervals; attributes append in
    ``key=value`` form.  Works on live :class:`Span` objects and on
    spans re-read from a journal (:func:`Span.from_dict`).
    """
    if not spans:
        return "(no spans)"
    by_parent: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    ids = {s.span_id for s in spans}
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(span.attrs.items())
        )
        lines.append(
            f"{'  ' * depth}{span.name} [{span.start}..{span.end}) "
            f"#{span.span_id[:8]}" + (f"  {attrs}" if attrs else "")
        )
        for child in by_parent.get(span.span_id, ()):
            emit(child, depth + 1)

    # Roots: no parent, or parent outside this span set (pruned trees).
    roots = [s for s in spans
             if s.parent_id is None or s.parent_id not in ids]
    for root in roots:
        emit(root, 0)
    return "\n".join(lines)

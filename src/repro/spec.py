"""The canonical run description: :class:`RunSpec` and its stable hash.

Every Monte-Carlo run in this library is a pure function of
``(spec, root_seed, run_index)`` — the determinism contract the
parallel engine (PR 2) established and every later backend preserved.
What was missing is the *spec* half of that triple as a first-class
value: the protocol / scheduler / inputs / memory / engine / budget
configuration used to travel as loose keyword arguments, duplicated
across :class:`~repro.sim.runner.ExperimentRunner`,
:class:`~repro.parallel.engine.BatchSpec` and the CLI.

:class:`RunSpec` is that value.  It composes the picklable spec classes
that already exist — :class:`~repro.parallel.tasks.ProtocolSpec`,
:class:`~repro.parallel.tasks.SchedulerSpec`,
:class:`~repro.parallel.tasks.ConstantInputs`,
:class:`~repro.sim.memory.MemorySpec` — plus the engine name (resolved
through :mod:`repro.engines`), the step budget, and the observation
options that shape recorded artifacts.

Canonical form (the rules docs/API.md documents):

1. :meth:`RunSpec.to_canonical` maps the spec to plain JSON data: every
   field name is fixed, aliases are resolved (``engine=None`` becomes
   the registry default), and only JSON-exact scalar types (``str``,
   ``int``, ``bool``, ``None``) may appear as input values — anything
   else raises :class:`SpecError` rather than hashing something
   representation-dependent.
2. :meth:`RunSpec.canonical_json` serializes that mapping with sorted
   keys, no whitespace, and ``ensure_ascii`` — one byte string per
   semantic spec, independent of dict insertion order, platform,
   interpreter, or worker start method (spawn and fork agree).
3. :meth:`RunSpec.spec_hash` is the SHA-256 hex digest of those bytes.
   Equal specs hash equal; semantically distinct specs (different
   memory model, budget, engine, …) hash differently because every
   field is in the canonical form.

The hash is the content address of the run store
(:mod:`repro.store`): results are filed under
``(spec_hash, root_seed, index_range)``, so a repeated sweep finds its
own shards and an interrupted one resumes from the last committed
shard.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.engines import resolve_engine
from repro.parallel.tasks import ConstantInputs, ProtocolSpec, SchedulerSpec
from repro.sim.memory import MemorySpec, memory_spec

#: Version stamp embedded in every canonical form; bump when the
#: canonical mapping itself changes shape (old hashes then miss, which
#: is the safe failure mode for a content-addressed store).
CANONICAL_VERSION = 1

#: Scalar types that serialize to exactly one JSON text.
_JSON_SCALARS = (str, int, float, bool, type(None))


class SpecError(ValueError):
    """A run description that cannot be canonicalized."""


@dataclasses.dataclass(frozen=True)
class ObsOptions:
    """Observation options that shape a run's recorded artifacts.

    Only options that change *what is recorded* belong here (they are
    part of the content address: a sweep recorded without a journal
    cannot serve a request that needs journal bytes).  Wall-clock-only
    observability — telemetry heartbeats, phase timers, tracers — never
    affects results or stored artifacts and is deliberately absent.
    """

    #: Record a per-shard metrics registry snapshot.
    metrics: bool = False
    #: Record per-shard journal segments (JSONL event streams).
    journal: bool = False

    def to_canonical(self) -> Dict[str, bool]:
        return {"metrics": self.metrics, "journal": self.journal}


def _canonical_scalar(value: Any, where: str) -> Any:
    if isinstance(value, _JSON_SCALARS):
        return value
    raise SpecError(
        f"{where} value {value!r} ({type(value).__name__}) is not "
        f"canonically serializable; RunSpec inputs must be JSON-exact "
        f"scalars (str, int, float, bool, None) so the spec hash is "
        f"representation-independent (docs/API.md)")


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """A frozen, hashable, canonical description of a seeded run batch.

    Compose it from the CLI-vocabulary spec classes::

        RunSpec(protocol=ProtocolSpec("two", 2),
                scheduler=SchedulerSpec("random"),
                inputs=ConstantInputs(("a", "b")),
                memory=MemorySpec("regular"),
                engine="vector",
                max_steps=4000)

    ``protocol``/``scheduler``/``inputs`` are factories in the
    :class:`~repro.sim.runner.ExperimentRunner` sense — the spec *is*
    directly usable as that runner's three factories, and pickles
    across spawn/fork worker boundaries unchanged.  The root seed is
    deliberately **not** a field: the store keys runs by
    ``(spec_hash, root_seed, index_range)``, so one spec addresses
    every seed's results.
    """

    protocol: ProtocolSpec
    scheduler: SchedulerSpec
    inputs: ConstantInputs
    memory: MemorySpec = MemorySpec("atomic")
    engine: Optional[str] = None
    max_steps: int = 4000
    strict: bool = False
    obs: ObsOptions = ObsOptions()

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, ProtocolSpec):
            raise SpecError(
                f"protocol must be a repro.parallel.tasks.ProtocolSpec "
                f"(a canonical name, not an arbitrary factory); got "
                f"{type(self.protocol).__name__}")
        if not isinstance(self.scheduler, SchedulerSpec):
            raise SpecError(
                f"scheduler must be a repro.parallel.tasks."
                f"SchedulerSpec; got {type(self.scheduler).__name__}")
        if not isinstance(self.inputs, ConstantInputs):
            raise SpecError(
                f"inputs must be a repro.parallel.tasks.ConstantInputs; "
                f"got {type(self.inputs).__name__}")
        # Normalize loose forms in place (frozen dataclass, hence
        # object.__setattr__): names/None become the canonical objects,
        # so equal specs compare and hash equal however they were
        # spelled.
        object.__setattr__(self, "memory", memory_spec(self.memory))
        object.__setattr__(
            self, "engine", resolve_engine("sim", self.engine).name)
        if not isinstance(self.obs, ObsOptions):
            raise SpecError(
                f"obs must be an ObsOptions; got "
                f"{type(self.obs).__name__}")
        if self.max_steps < 1:
            raise SpecError(
                f"max_steps must be >= 1, got {self.max_steps}")

    # -- canonical form ------------------------------------------------

    def to_canonical(self) -> Dict[str, Any]:
        """The canonical JSON-ready mapping (rule 1 of the module docs)."""
        return {
            "version": CANONICAL_VERSION,
            "protocol": {
                "name": self.protocol.name,
                "n_processes": self.protocol.n_processes,
            },
            "scheduler": {"name": self.scheduler.name},
            "inputs": [
                _canonical_scalar(v, "inputs")
                for v in self.inputs.values
            ],
            "memory": self.memory.name,
            "engine": self.engine,
            "budgets": {"max_steps": self.max_steps},
            "strict": self.strict,
            "obs": self.obs.to_canonical(),
        }

    def canonical_json(self) -> str:
        """One deterministic text per semantic spec (rule 2)."""
        return json.dumps(self.to_canonical(), sort_keys=True,
                          separators=(",", ":"), ensure_ascii=True)

    def spec_hash(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` (rule 3)."""
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    # -- construction helpers ------------------------------------------

    @classmethod
    def from_batch(cls, spec, max_steps: int,
                   obs: ObsOptions = ObsOptions()) -> "RunSpec":
        """Lift a :class:`~repro.parallel.engine.BatchSpec` + budget.

        This is how ``run_many(..., store=...)`` derives the content
        address of a sweep.  The batch's factories must be the
        canonical spec classes — an arbitrary module-level factory
        executes fine in workers but has no canonical serialization, so
        a store-backed sweep refuses it up front.
        """
        try:
            return cls(
                protocol=spec.protocol_factory,
                scheduler=spec.scheduler_factory,
                inputs=spec.inputs_factory,
                memory=spec.memory,
                engine=spec.resolved_engine,
                max_steps=max_steps,
                strict=spec.strict,
                obs=obs,
            )
        except SpecError as exc:
            raise SpecError(
                f"store-backed sweeps need canonically hashable "
                f"factories (ProtocolSpec / SchedulerSpec / "
                f"ConstantInputs from repro.parallel.tasks): {exc}"
            ) from exc

    def factories(self) -> Tuple[ProtocolSpec, SchedulerSpec,
                                 ConstantInputs]:
        """The runner's ``(protocol, scheduler, inputs)`` factory triple."""
        return self.protocol, self.scheduler, self.inputs

    def describe(self) -> str:
        """One human line: the CLI vocabulary of this spec."""
        return (f"{self.protocol.name}({self.protocol.n_processes}) "
                f"inputs={','.join(map(str, self.inputs.values))} "
                f"sched={self.scheduler.name} mem={self.memory.name} "
                f"engine={self.engine} max_steps={self.max_steps}")

"""Dependency-free statistics for Monte-Carlo batches.

Deliberately small: means, standard deviations, normal-approximation
confidence intervals, empirical tail curves, and a least-squares fit of
a geometric decay rate (used to compare measured tails against the
paper's (1/4)^(k/2) and (3/4)^k envelopes).  NumPy is available in the
environment but unnecessary at these data sizes, and keeping the
arithmetic explicit makes the benchmark output auditable.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float

    def render(self, label: str = "", fmt: str = "{:.2f}") -> str:
        head = f"{label}: " if label else ""
        return (
            head
            + f"n={self.n} mean={fmt.format(self.mean)} "
            + f"sd={fmt.format(self.stdev)} min={fmt.format(self.minimum)} "
            + f"p50={fmt.format(self.p50)} p90={fmt.format(self.p90)} "
            + f"p99={fmt.format(self.p99)} max={fmt.format(self.maximum)}"
        )


def percentile(sorted_xs: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an already sorted sample."""
    if not sorted_xs:
        raise ValueError("empty sample")
    idx = min(len(sorted_xs) - 1, max(0, math.ceil(q * len(sorted_xs)) - 1))
    return sorted_xs[idx]


def summarize(xs: Sequence[float]) -> Summary:
    """Compute a :class:`Summary` of a non-empty sample."""
    if not xs:
        raise ValueError("empty sample")
    data = sorted(float(x) for x in xs)
    n = len(data)
    mean = sum(data) / n
    var = sum((x - mean) ** 2 for x in data) / n if n > 1 else 0.0
    return Summary(
        n=n,
        mean=mean,
        stdev=math.sqrt(var),
        minimum=data[0],
        maximum=data[-1],
        p50=percentile(data, 0.50),
        p90=percentile(data, 0.90),
        p99=percentile(data, 0.99),
    )


def mean_confidence_interval(
    xs: Sequence[float], z: float = 1.96
) -> Tuple[float, float, float]:
    """(mean, lo, hi) normal-approximation confidence interval."""
    s = summarize(xs)
    half = z * s.stdev / math.sqrt(s.n) if s.n > 1 else 0.0
    return s.mean, s.mean - half, s.mean + half


def empirical_tail(xs: Sequence[float], ks: Sequence[float]) -> List[float]:
    """P̂(X > k) for each k, from the sample."""
    if not xs:
        raise ValueError("empty sample")
    data = sorted(xs)
    n = len(data)
    out = []
    import bisect

    for k in ks:
        idx = bisect.bisect_right(data, k)
        out.append((n - idx) / n)
    return out


def histogram(xs: Sequence[int]) -> Dict[int, int]:
    """Integer-valued histogram (value -> count)."""
    counts: Dict[int, int] = {}
    for x in xs:
        counts[x] = counts.get(x, 0) + 1
    return dict(sorted(counts.items()))


def fit_geometric_rate(ks: Sequence[float], tails: Sequence[float]) -> float:
    """Least-squares fit of ``rate`` in ``tail(k) ≈ rate^k``.

    Works in log space over the strictly positive tail points; returns
    the fitted per-unit decay rate.  Used to compare measured tails
    against the paper's geometric envelopes: the fit should come out at
    or below the envelope's rate.
    """
    points = [
        (k, math.log(t)) for k, t in zip(ks, tails) if t > 0.0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive tail points")
    n = len(points)
    sx = sum(k for k, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(k * k for k, _ in points)
    sxy = sum(k * y for k, y in points)
    denom = n * sxx - sx * sx
    if denom == 0:
        raise ValueError("degenerate abscissae")
    slope = (n * sxy - sx * sy) / denom
    return math.exp(slope)

"""Analysis helpers: the paper's closed-form bounds and empirical stats.

:mod:`repro.analysis.theory` encodes every quantitative claim in the
paper as a function (tail envelopes, expected-step bounds, reduction
costs), so benchmarks compare measurement against formula rather than
against magic numbers.  :mod:`repro.analysis.stats` provides the
dependency-free statistics used to summarize Monte-Carlo batches.
"""

from repro.analysis.theory import (
    two_process_tail_bound,
    two_process_tail_paper_stated,
    two_process_expected_steps_bound,
    three_unbounded_num_tail_bound,
    multivalued_instance_count,
    geometric_tail,
)
from repro.analysis.stats import (
    Summary,
    summarize,
    empirical_tail,
    mean_confidence_interval,
    fit_geometric_rate,
)

__all__ = [
    "two_process_tail_bound",
    "two_process_tail_paper_stated",
    "two_process_expected_steps_bound",
    "three_unbounded_num_tail_bound",
    "multivalued_instance_count",
    "geometric_tail",
    "Summary",
    "summarize",
    "empirical_tail",
    "mean_confidence_interval",
    "fit_geometric_rate",
]

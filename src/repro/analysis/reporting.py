"""Machine-readable experiment records.

Benchmarks print human tables; downstream analysis (plotting, paper
writing, regression tracking across library versions) wants JSON.  This
module serializes batch statistics and experiment records with enough
provenance (seed, protocol, scheduler, parameters) to regenerate them.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.stats import summarize
from repro.sim.runner import BatchStats


@dataclasses.dataclass
class ExperimentRecord:
    """One measured cell of an experiment, with provenance."""

    experiment: str
    protocol: str
    scheduler: str
    inputs: str
    seed: int
    n_runs: int
    max_steps: int
    metrics: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def batch_metrics(stats: BatchStats) -> Dict[str, Any]:
    """Extract the standard metric set from a batch."""
    costs = stats.per_processor_costs()
    out: Dict[str, Any] = {
        "n_runs": stats.n_runs,
        "completion_rate": stats.completion_rate,
        "consistency_violations": stats.n_consistency_violations,
        "nontriviality_violations": stats.n_nontriviality_violations,
    }
    if costs:
        s = summarize(costs)
        out.update(
            mean_steps=s.mean, stdev_steps=s.stdev, p50_steps=s.p50,
            p90_steps=s.p90, p99_steps=s.p99, max_steps_observed=s.maximum,
        )
    flips = stats.mean_coin_flips()
    if flips is not None:
        out["mean_coin_flips"] = flips
    observability = stats.metrics_dict()
    if observability is not None:
        out["observability"] = observability
    return out


def record_batch(
    experiment: str,
    protocol: str,
    scheduler: str,
    inputs: str,
    seed: int,
    stats: BatchStats,
) -> ExperimentRecord:
    """Build an :class:`ExperimentRecord` from a finished batch."""
    return ExperimentRecord(
        experiment=experiment,
        protocol=protocol,
        scheduler=scheduler,
        inputs=inputs,
        seed=seed,
        n_runs=stats.n_runs,
        max_steps=stats.max_steps,
        metrics=batch_metrics(stats),
    )


def environment_stamp() -> Dict[str, str]:
    """Reproducibility header for a report file."""
    import repro

    return {
        "library_version": repro.__version__,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
    }


def dump_records(records: Sequence[ExperimentRecord],
                 path: Optional[str] = None, indent: int = 2) -> str:
    """Serialize records (plus environment stamp) to JSON.

    Returns the JSON text; writes it to ``path`` if given.
    """
    doc = {
        "environment": environment_stamp(),
        "records": [r.to_dict() for r in records],
    }
    text = json.dumps(doc, indent=indent, sort_keys=True, default=str)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text + "\n")
    return text


def load_records(path: str) -> List[ExperimentRecord]:
    """Read records back (environment stamp is dropped)."""
    with open(path) as fh:
        doc = json.load(fh)
    return [
        ExperimentRecord(**{k: v for k, v in raw.items()})
        for raw in doc["records"]
    ]

"""The paper's quantitative claims as executable formulas.

Every benchmark compares its measurements against these functions, so
the mapping from theorem to number lives in exactly one place:

* Theorem 7 + Corollary (Section 4): the two-processor protocol's tail
  bound and the expected-steps bound of 10;
* Theorem 9 + Corollary (Section 5): the three-processor protocol's
  geometric num-field envelope;
* Theorem 5 (Section 4): the ⌈log₂ k⌉ multiplicative cost of k-valued
  coordination.
"""

from __future__ import annotations

import math
from typing import List


def geometric_tail(rate: float, k: int) -> float:
    """P(X > k) for a geometric-type tail with per-round survival ``rate``."""
    if not 0.0 < rate < 1.0:
        raise ValueError("rate must be in (0, 1)")
    if k < 0:
        raise ValueError("k must be non-negative")
    return rate ** k


def two_process_tail_bound(k: int) -> float:
    """Theorem 7, proof-implied: P(not decided after k of its steps).

    The proof shows every read-write pair after the initial write
    reaches a univalent configuration with probability **at least
    1/4**, whatever the adaptive scheduler does.  Independent pair
    failures of probability ≤ 3/4 compound to

        P(not decided after k + 2 steps) ≤ (3/4)^(k/2),

    i.e. (3/4)^((j−2)/2) in terms of the total per-processor step
    count j (the two extra steps are the initial write and the final
    read), clamped to 1 for j ≤ 2.

    Note the exponent *base*: the paper's statement says (1/4)^(k/2),
    which does not follow from its own per-pair probability — with
    pair-success ≥ 1/4 the survivor mass is (3/4)^(k/2), and our
    measurements land between the two (per-pair failure ≈ 1/2 under
    the strongest adversaries we field).  This is reproduction finding
    F2; :func:`two_process_tail_paper_stated` preserves the printed
    claim for comparison.  The corollary's expectation (2 + 4·2 = 10)
    is consistent with the proof-implied version: 1/4 success per pair
    means 4 expected pairs of 2 steps each.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k <= 2:
        return 1.0
    return (3.0 / 4.0) ** ((k - 2) / 2.0)


def two_process_tail_paper_stated(k: int) -> float:
    """Theorem 7 as literally printed: (1/4)^((k−2)/2).

    Kept for the E2 comparison table; see finding F2 in EXPERIMENTS.md
    — the measured tail violates this curve but satisfies the
    proof-implied :func:`two_process_tail_bound`.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k <= 2:
        return 1.0
    return (1.0 / 4.0) ** ((k - 2) / 2.0)


def two_process_expected_steps_bound() -> float:
    """Corollary to Theorem 7: E[steps to decide] ≤ 2 + 4·2 = 10.

    One initial write, one final read, and an expected 4 read-write
    pairs (success probability 1/4 per pair, 2 steps per pair).
    """
    return 10.0


def three_unbounded_num_tail_bound(k: int) -> float:
    """Theorem 9: P(num = k in any register) ≤ (3/4)^k.

    Each time a leading processor increments its num, the others agree
    with it with probability at least 1/4, so reaching num k requires
    surviving k independent 3/4-probability escapes.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    return (3.0 / 4.0) ** k


def multivalued_instance_count(k: int) -> int:
    """Theorem 5: number of binary instances for a k-valued domain."""
    if k < 2:
        raise ValueError("need at least two values")
    return max(1, math.ceil(math.log2(k)))


def expected_steps_series(tail, k_max: int) -> float:
    """E[X] = Σ_{k≥0} P(X > k), truncated at ``k_max``.

    Utility for turning a tail bound into an expected-value bound; with
    the paper's exponentially decreasing tails the truncation error is
    negligible for modest ``k_max``.
    """
    return sum(tail(k) for k in range(k_max + 1))


def theory_tail_curve(tail, ks: List[int]) -> List[float]:
    """Evaluate a tail bound on a list of abscissae (plot helper)."""
    return [tail(k) for k in ks]

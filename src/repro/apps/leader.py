"""Leader election: the one-shot identity-agreement special case.

Electing a leader among n asynchronous processors is coordination with
inputs = processor identities: the agreed value names the leader.  The
paper's wait-freedom makes this election robust in a way message-
passing elections cannot be: up to n−1 processors may crash (or simply
be arbitrarily slow) and the survivors still elect *some* processor —
possibly a crashed one, which is unavoidable and harmless for uses like
"who owns this log segment" where the losers only need a consistent
answer, not a live leader.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.core.n_process import NProcessProtocol
from repro.errors import VerificationError
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sched.crash import CrashingScheduler, CrashPlan
from repro.sched.simple import RandomScheduler


@dataclasses.dataclass(frozen=True)
class LeaderElection:
    """Result of one election."""

    leader: int
    votes: Dict[int, int]  # pid -> the leader it learned
    steps: int
    crashed: Tuple[int, ...]

    @property
    def unanimous(self) -> bool:
        return len(set(self.votes.values())) <= 1


def elect_leader(
    n: int,
    seed: int = 0,
    crash: Optional[Sequence[int]] = None,
    max_steps: int = 200_000,
) -> LeaderElection:
    """Elect a leader among ``n`` processors, optionally crashing some.

    ``crash`` lists processor ids to fail-stop right after their first
    step (they wrote their candidacy and died).  At least one processor
    must survive.

    >>> result = elect_leader(4, seed=3)
    >>> result.unanimous and 0 <= result.leader < 4
    True
    """
    if n < 2:
        raise ValueError("an election needs at least two processors")
    crash = tuple(crash or ())
    if len(set(crash)) >= n:
        raise ValueError("at least one processor must survive")

    rng = ReplayableRng(seed)
    protocol = NProcessProtocol(n, values=tuple(range(n)))
    scheduler = RandomScheduler(rng.child("sched"))
    if crash:
        plan = CrashPlan(after_activations={pid: 1 for pid in crash})
        scheduler = CrashingScheduler(scheduler, plan)
    sim = Simulation(protocol, inputs=tuple(range(n)), scheduler=scheduler,
                     rng=rng.child("kernel"))
    result = sim.run(max_steps)

    votes = dict(result.decisions)
    if not votes:
        raise VerificationError("no survivor learned a leader")
    leaders = set(votes.values())
    if len(leaders) != 1:
        raise VerificationError(f"split election: {votes!r}")
    return LeaderElection(
        leader=next(iter(leaders)),
        votes=votes,
        steps=result.total_steps,
        crashed=tuple(sorted(result.crashed)),
    )

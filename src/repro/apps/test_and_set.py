"""One-shot test-and-set from coordination.

The paper's model pointedly *excludes* atomic test-and-set: "atomic
test-and-set seems to require quite stringent timing constraints on the
low level hardware".  The coordination protocols recover a softer form
of it: a **one-shot** test-and-set object, where of all the processors
that ever call ``test_and_set()``, exactly one gets ``0`` (the winner,
as if it had set the bit first) and everyone else gets ``1``.

Construction: run coordination with inputs = caller identities; the
agreed identity is the winner.  Consistency makes the winner unique;
nontriviality makes it an actual caller; wait-freedom means a caller
finishes no matter what the others do — none of which a deterministic
register-only implementation could provide (Theorem 4: a 2-processor
deterministic one-shot TAS would solve coordination deterministically).

This is the historically resonant direction: test-and-set has consensus
number 2 in Herlihy's hierarchy, and the paper's randomized protocols
are exactly what lets humble read/write registers climb past their
deterministic consensus number of 1.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.core.n_process import NProcessProtocol
from repro.errors import VerificationError
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sched.simple import RandomScheduler


@dataclasses.dataclass(frozen=True)
class TasOutcome:
    """What one one-shot TAS race produced."""

    winner: int
    returns: Dict[int, int]  # pid -> 0 (won) or 1 (lost)
    steps: int

    @property
    def exactly_one_winner(self) -> bool:
        return sum(1 for r in self.returns.values() if r == 0) == 1


class OneShotTestAndSet:
    """A single-use test-and-set object for a fixed set of processors.

    Usage::

        tas = OneShotTestAndSet(n=4, seed=7)
        outcome = tas.race([0, 2, 3])   # these processors all call TAS
        outcome.returns                 # {0: 1, 2: 0, 3: 1} — P2 won

    The race is resolved by one consensus instance among the callers
    (their ids as inputs); a processor that never calls is simply not a
    participant, matching TAS semantics where non-callers observe
    nothing.
    """

    def __init__(self, n: int, seed: int = 0, scheduler_factory=None) -> None:
        if n < 1:
            raise ValueError("need at least one processor")
        self.n = n
        self._rng = ReplayableRng(seed)
        self._scheduler_factory = scheduler_factory or (
            lambda rng: RandomScheduler(rng)
        )
        self._outcome: Optional[TasOutcome] = None

    @property
    def consumed(self) -> bool:
        """One-shot: has the race been run?"""
        return self._outcome is not None

    def race(self, callers: Sequence[int],
             max_steps: int = 200_000) -> TasOutcome:
        """Resolve the object among ``callers`` (each calls TAS once)."""
        if self.consumed:
            raise VerificationError("one-shot test-and-set already used")
        callers = tuple(sorted(set(callers)))
        if any(not 0 <= c < self.n for c in callers):
            raise ValueError(f"callers {callers} outside 0..{self.n - 1}")
        if not callers:
            raise ValueError("at least one caller required")

        if len(callers) == 1:
            # A solo caller wins trivially (it reads no contention).
            outcome = TasOutcome(
                winner=callers[0], returns={callers[0]: 0}, steps=0
            )
            self._outcome = outcome
            return outcome

        protocol = NProcessProtocol(len(callers), values=callers)
        sim = Simulation(
            protocol, inputs=callers,
            scheduler=self._scheduler_factory(self._rng.child("sched")),
            rng=self._rng.child("kernel"),
        )
        result = sim.run(max_steps)
        if not result.completed:
            raise VerificationError(f"race exceeded {max_steps} steps")
        values = result.decided_values
        if len(values) != 1:
            raise VerificationError(f"split race: {result.decisions!r}")
        winner = next(iter(values))
        outcome = TasOutcome(
            winner=winner,
            returns={c: 0 if c == winner else 1 for c in callers},
            steps=result.total_steps,
        )
        self._outcome = outcome
        return outcome

"""Applications of coordination (the paper's Section 1 motivation).

The coordination problem "includes several well studied distributed
problems as a special case":

* :mod:`repro.apps.mutex` — mutual exclusion: "choosing the identity of
  a processor who is to enter the critical region ... the input value
  of every processor in the trial region is simply its own identity";
* :mod:`repro.apps.leader` — leader election, the one-shot version of
  the same idea;
* :mod:`repro.apps.choice` — choice coordination à la Rabin [6]:
  processors with private preferences agree on one shared alternative;
* :mod:`repro.apps.test_and_set` — a one-shot test-and-set object,
  recovering (softly) the primitive the paper's model excludes.

Each application is a thin, honest layer over the consensus protocols:
the point is to demonstrate the reduction the paper sketches, with the
application-level correctness properties (mutual exclusion, unique
leader, valid choice) checked explicitly.
"""

from repro.apps.mutex import CriticalSectionLog, MutualExclusion
from repro.apps.leader import LeaderElection, elect_leader
from repro.apps.choice import ChoiceCoordination, coordinate_choice
from repro.apps.test_and_set import OneShotTestAndSet, TasOutcome

__all__ = [
    "CriticalSectionLog",
    "MutualExclusion",
    "LeaderElection",
    "elect_leader",
    "ChoiceCoordination",
    "coordinate_choice",
    "OneShotTestAndSet",
    "TasOutcome",
]

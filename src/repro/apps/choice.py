"""Choice coordination: agree on one of several alternatives.

Rabin's choice coordination problem [6 in the paper] has processors
facing a set of indistinguishable alternatives (the classic story is
Degas' turtles picking one of two dishes); they must all commit to the
same one.  In the paper's framework this is coordination with the
alternatives as the value domain: nontriviality guarantees the chosen
alternative was somebody's preference, consistency guarantees a single
collective choice.

For alternative sets larger than two this module demonstrates the
Theorem 5 reduction in action: the k alternatives are agreed upon
bit-by-bit through ⌈log₂ k⌉ embedded binary instances.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.core.multivalued import MultiValuedProtocol
from repro.core.n_process import NProcessProtocol
from repro.errors import VerificationError
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sched.simple import RandomScheduler


@dataclasses.dataclass(frozen=True)
class ChoiceCoordination:
    """Result of one choice-coordination run."""

    chosen: Hashable
    preferences: Tuple[Hashable, ...]
    steps: int
    via_reduction: bool

    @property
    def respected_someone(self) -> bool:
        """The chosen alternative was some processor's preference."""
        return self.chosen in self.preferences


def coordinate_choice(
    alternatives: Sequence[Hashable],
    preferences: Sequence[Hashable],
    seed: int = 0,
    use_reduction: Optional[bool] = None,
    max_steps: int = 400_000,
) -> ChoiceCoordination:
    """Make ``len(preferences)`` processors agree on one alternative.

    ``preferences[i]`` is processor i's preferred alternative (must be
    in ``alternatives``).  ``use_reduction`` forces the Theorem 5
    bitwise reduction; the default uses it only when it is interesting
    (more than two alternatives).

    >>> result = coordinate_choice("xyzw", ["x", "w", "z"], seed=5)
    >>> result.chosen in "xyzw" and result.respected_someone
    True
    """
    alternatives = tuple(alternatives)
    preferences = tuple(preferences)
    if len(preferences) < 2:
        raise ValueError("need at least two processors")
    if any(p not in alternatives for p in preferences):
        raise ValueError("preferences must be among the alternatives")

    n = len(preferences)
    if use_reduction is None:
        use_reduction = len(alternatives) > 2
    if use_reduction:
        protocol = MultiValuedProtocol(
            base_factory=lambda: NProcessProtocol(n, values=(0, 1)),
            values=alternatives,
        )
    else:
        protocol = NProcessProtocol(n, values=alternatives)

    rng = ReplayableRng(seed)
    sim = Simulation(
        protocol, inputs=preferences,
        scheduler=RandomScheduler(rng.child("sched")),
        rng=rng.child("kernel"),
    )
    result = sim.run(max_steps)
    if not result.completed:
        raise VerificationError(f"choice did not complete in {max_steps} steps")
    values = result.decided_values
    if len(values) != 1:
        raise VerificationError(f"split choice: {result.decisions!r}")
    return ChoiceCoordination(
        chosen=next(iter(values)),
        preferences=preferences,
        steps=result.total_steps,
        via_reduction=use_reduction,
    )

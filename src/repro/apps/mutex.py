"""Mutual exclusion via coordination.

Section 1 of the paper: "the mutual exclusion problem can be formulated
in our context as choosing the identity of a processor who is to enter
the critical region.  In this case, the input value of every processor
in the trial region is simply its own identity."

This module implements exactly that reduction as a long-lived arbiter:

* each *round*, the processors currently in the trial region run one
  fresh consensus instance with their own ids as inputs;
* the agreed id enters the critical section; everyone else loses the
  round and retries in the next one;
* the winner leaves the critical section before the next round starts
  (rounds are the CS grants).

The arbiter records a :class:`CriticalSectionLog` and checks the mutual
exclusion property — at most one processor per grant, and every grant
goes to a processor that was actually contending (that is consistency
and nontriviality of the underlying consensus, wearing their
application clothes).

Note what the reduction does *not* give: deadlock-free mutual exclusion
under the paper's schedule class is exactly as hard as coordination, so
the deterministic Dijkstra-style algorithms survive only because they
assume *admissible* schedules (the paper's footnote 1).  The randomized
arbiter here works against every schedule, with probability-1
termination per round.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.n_process import NProcessProtocol
from repro.core.protocol import ConsensusProtocol
from repro.errors import VerificationError
from repro.sim.kernel import Simulation
from repro.sim.rng import ReplayableRng
from repro.sched.simple import RandomScheduler


@dataclasses.dataclass(frozen=True)
class Grant:
    """One critical-section grant."""

    round_index: int
    winner: int
    contenders: Tuple[int, ...]
    steps: int


class CriticalSectionLog:
    """The arbiter's audit trail, with the safety checks."""

    def __init__(self) -> None:
        self._grants: List[Grant] = []

    def record(self, grant: Grant) -> None:
        if grant.winner not in grant.contenders:
            raise VerificationError(
                f"round {grant.round_index}: winner {grant.winner} was "
                f"not contending {grant.contenders}"
            )
        self._grants.append(grant)

    @property
    def grants(self) -> Tuple[Grant, ...]:
        return tuple(self._grants)

    def wins_by_processor(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for g in self._grants:
            counts[g.winner] = counts.get(g.winner, 0) + 1
        return counts

    def mutual_exclusion_holds(self) -> bool:
        """One winner per round, by construction — asserted anyway."""
        return all(
            isinstance(g.winner, int) and g.winner in g.contenders
            for g in self._grants
        )


ProtocolFactory = Callable[[Sequence[Hashable]], ConsensusProtocol]


def _default_protocol_factory(ids: Sequence[Hashable]) -> ConsensusProtocol:
    """Consensus over contender ids (the paper's formulation needs a
    multi-valued domain — ids — which the pref/num family handles
    natively)."""
    if len(ids) < 2:
        raise ValueError("arbitration needs at least two contenders")
    return NProcessProtocol(len(ids), values=tuple(ids))


class MutualExclusion:
    """A long-lived mutual-exclusion arbiter over consensus rounds.

    Parameters
    ----------
    n:
        Number of processors in the system.
    protocol_factory:
        Builds the per-round consensus instance from the contender id
        tuple; defaults to the n-processor pref/num protocol.
    seed:
        Root seed for all rounds' coins and scheduling.
    """

    def __init__(self, n: int,
                 protocol_factory: Optional[ProtocolFactory] = None,
                 seed: int = 0) -> None:
        if n < 2:
            raise ValueError("need at least two processors")
        self.n = n
        self._factory = protocol_factory or _default_protocol_factory
        self._rng = ReplayableRng(seed)
        self.log = CriticalSectionLog()

    def arbitrate_round(self, contenders: Sequence[int],
                        max_steps: int = 100_000) -> Grant:
        """Run one trial-region round among ``contenders``.

        Every contender runs the consensus protocol with its own id as
        input; the agreed id gets the critical section.
        """
        contenders = tuple(contenders)
        if any(not 0 <= c < self.n for c in contenders):
            raise ValueError(f"contenders {contenders} outside 0..{self.n - 1}")
        if len(set(contenders)) != len(contenders):
            raise ValueError("duplicate contenders")
        round_index = len(self.log.grants)
        round_rng = self._rng.child("round", round_index)

        protocol = self._factory(contenders)
        scheduler = RandomScheduler(round_rng.child("sched"))
        sim = Simulation(
            protocol, inputs=contenders, scheduler=scheduler,
            rng=round_rng.child("kernel"),
        )
        result = sim.run(max_steps)
        if not result.completed:
            raise VerificationError(
                f"round {round_index} exceeded {max_steps} steps"
            )
        values = result.decided_values
        if len(values) != 1:
            raise VerificationError(
                f"round {round_index} produced conflicting winners {values}"
            )
        winner = next(iter(values))
        grant = Grant(
            round_index=round_index,
            winner=winner,
            contenders=contenders,
            steps=result.total_steps,
        )
        self.log.record(grant)
        return grant

    def run_rounds(self, n_rounds: int,
                   contention: Optional[int] = None) -> CriticalSectionLog:
        """Run many rounds with randomly drawn contender sets.

        ``contention`` fixes the trial-region size per round (default:
        random between 2 and n).
        """
        for i in range(n_rounds):
            rng = self._rng.child("contenders", i)
            k = contention or rng.randint(2, self.n)
            contenders = sorted(rng.sample(range(self.n), k))
            self.arbitrate_round(contenders)
        return self.log

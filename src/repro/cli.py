"""Command-line interface: ``python -m repro <command>``.

Subcommands map one-to-one onto the library's main entry points:

* ``solve``          — run one consensus instance and print the outcome;
* ``verify``         — exhaustive safety verification over all
  schedules × coin outcomes;
* ``impossibility``  — run the Theorem 4 pipeline over the
  deterministic zoo (or one member) and print the certificates;
* ``game``           — solve the two-processor scheduling game exactly
  and print worst-case expected costs;
* ``tower``          — grade the Lamport register construction tower;
* ``report``         — run an instrumented Monte-Carlo batch and print
  its observability metrics (or replay a saved journal);
* ``trace``          — re-execute one seeded run with the span tracer
  attached and print its deterministic span tree;
* ``top``            — follow a sweep's live telemetry file (one row
  per shard: progress, steps/s, ETA, tail percentiles);
* ``journal verify`` — check a JSONL journal for truncation or damage;
* ``store``          — inspect, checksum-verify, or garbage-collect a
  content-addressed run store (``ls``/``show``/``verify``/``gc``; see
  docs/STORE.md).

Every ``--engine`` flag below validates through the engine registry
(:mod:`repro.engines`): the accepted vocabulary, the default, and the
did-you-mean error for typos all come from the registry rather than
per-command hardcoded lists.

Examples::

    python -m repro solve --protocol three-bounded --inputs a,b,b --trace
    python -m repro solve --inputs a,b --metrics --journal run.jsonl
    python -m repro solve --inputs a,b --memory regular --seed 3
    python -m repro verify --protocol two --inputs a,b
    python -m repro verify --inputs a,b --memory safe
    python -m repro impossibility
    python -m repro game --cost processor:0
    python -m repro tower --seeds 20
    python -m repro report --protocol two --runs 5000
    python -m repro report --runs 100000 --workers 8 --telemetry top.jsonl
    python -m repro report --runs 100000 --store runs/ --workers 8
    python -m repro report --runs 100000 --store runs/ --resume
    python -m repro report --runs 100000 --workers 8 --supervised \
        --shard-timeout 300 --max-retries 2 --on-fault degrade
    python -m repro report --from-journal run.jsonl
    python -m repro report --runs 200 --profile --folded profile.folded
    python -m repro trace --seed 42 --index 7
    python -m repro top top.jsonl --follow
    python -m repro journal verify run.jsonl
    python -m repro store ls runs/
    python -m repro store show runs/ 260585
    python -m repro store verify runs/
    python -m repro store gc runs/ --keep 260585 --dry-run
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _engine_argument(parser: argparse.ArgumentParser, kind: str,
                     detail: str) -> None:
    """Add a registry-driven ``--engine`` flag for one engine kind.

    The accepted names, the advertised default, and the rejection
    message (with its did-you-mean suggestion) all come from
    :mod:`repro.engines` — the CLI holds no engine vocabulary of its
    own.
    """
    from repro.engines import default_engine, engine_names

    def validate(name: str) -> str:
        from repro.engines import UnknownEngineError, resolve_engine

        try:
            return resolve_engine(kind, name).name
        except UnknownEngineError as exc:
            raise argparse.ArgumentTypeError(str(exc))

    parser.add_argument(
        "--engine", default=None, type=validate,
        metavar="{" + ",".join(engine_names(kind)) + "}",
        help=(f"{detail} (default: "
              f"{default_engine(kind).name})"))


def _build_protocol(name: str, n_inputs: int):
    from repro.core import (
        NaiveProtocol,
        NProcessProtocol,
        ThreeBoundedProtocol,
        ThreeUnboundedProtocol,
        TwoProcessProtocol,
    )

    if name == "two":
        return TwoProcessProtocol()
    if name == "three-unbounded":
        return ThreeUnboundedProtocol()
    if name == "three-bounded":
        return ThreeBoundedProtocol()
    if name == "n":
        return NProcessProtocol(n_inputs)
    if name == "naive":
        return NaiveProtocol(n_inputs)
    raise SystemExit(f"unknown protocol {name!r}")


def _build_scheduler(name: str, seed: int, memory: str = "atomic",
                     read_policy: Optional[str] = None):
    from repro.sched import (
        LaggardFreezer,
        ObliviousScheduler,
        RandomScheduler,
        ReadValueAdversary,
        RoundRobinScheduler,
        SplitVoteAdversary,
    )
    from repro.sim.rng import ReplayableRng

    rng = ReplayableRng(seed).child("cli-sched")
    table = {
        "random": lambda: RandomScheduler(rng),
        "round-robin": lambda: RoundRobinScheduler(),
        "oblivious": lambda: ObliviousScheduler(rng),
        "split-vote": lambda: SplitVoteAdversary(),
        "laggard-freezer": lambda: LaggardFreezer(),
    }
    if name not in table:
        raise SystemExit(f"unknown scheduler {name!r}")
    scheduler = table[name]()
    if memory != "atomic":
        # Weak registers put read-value choice in adversary hands; the
        # CLI default is the hostile policy (that is the interesting
        # experiment), overridable with --read-policy.
        policy = read_policy or "adversarial"
        scheduler = ReadValueAdversary(
            scheduler, policy=policy,
            rng=ReplayableRng(seed).child("cli-read-values"),
        )
    elif read_policy is not None:
        raise SystemExit("--read-policy needs --memory regular|safe "
                         "(atomic reads have exactly one legal value)")
    return scheduler


def _solve_sinks(args: argparse.Namespace):
    """Build the (metrics, journal, sinks) triple a command asked for."""
    from repro.obs import JsonlJournal, MetricsRegistry

    metrics = MetricsRegistry() if getattr(args, "metrics", False) else None
    journal = (JsonlJournal(args.journal,
                            memory=getattr(args, "memory", "atomic"))
               if getattr(args, "journal", None) else None)
    sinks = tuple(s for s in (metrics, journal) if s is not None)
    return metrics, journal, sinks


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.core.consensus import solve

    inputs = args.inputs.split(",")
    protocol = _build_protocol(args.protocol, len(inputs))
    if protocol.n_processes != len(inputs):
        raise SystemExit(
            f"{args.protocol} needs {protocol.n_processes} inputs, "
            f"got {len(inputs)}"
        )
    scheduler = _build_scheduler(args.scheduler, args.seed,
                                 memory=args.memory,
                                 read_policy=args.read_policy)
    metrics, journal, sinks = _solve_sinks(args)
    outcome = solve(protocol, inputs, scheduler=scheduler, seed=args.seed,
                    max_steps=args.max_steps, record_trace=args.trace,
                    sinks=sinks, memory=args.memory, engine=args.engine)
    if journal is not None:
        journal.close()
    print(f"protocol:   {protocol.name}")
    print(f"inputs:     {inputs}")
    print(f"scheduler:  {args.scheduler} (seed {args.seed})")
    if args.memory != "atomic":
        policy = args.read_policy or "adversarial"
        print(f"memory:     {args.memory} registers "
              f"(read policy: {policy})")
    print(f"agreed on:  {outcome.value!r}")
    print(f"decisions:  {outcome.decisions}")
    print(f"steps:      {outcome.steps} total, "
          f"{outcome.steps_per_processor} per processor")
    print(f"consistent: {outcome.consistent}   "
          f"nontrivial: {outcome.nontrivial}")
    if args.trace and outcome.trace is not None:
        print("\ntrace:")
        if args.diagram:
            from repro.sim.viz import render_space_time

            print(render_space_time(outcome.trace, protocol.n_processes,
                                    limit=args.trace_limit))
        else:
            print(outcome.trace.render(limit=args.trace_limit))
    if metrics is not None:
        print("\nmetrics:")
        print(metrics.render())
    if journal is not None:
        print(f"\njournal:    {args.journal} "
              f"({journal.events_written} events)")
    return 0 if outcome.consistent and outcome.nontrivial else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.checker import verify_safety

    inputs = args.inputs.split(",")
    protocol = _build_protocol(args.protocol, len(inputs))
    if args.engine == "fingerprints":
        from repro.checker.statespace import explore_fast
        from repro.parallel.tasks import ProtocolSpec

        rep = explore_fast(
            protocol, inputs, memory=args.memory, max_depth=args.depth,
            max_states=args.max_states, symmetry=args.symmetry,
            por=args.por, workers=args.workers, exact=args.exact,
            protocol_factory=ProtocolSpec(args.protocol, len(inputs)),
            telemetry_path=args.telemetry,
        )
        print(f"protocol: {protocol.name}, inputs {inputs}")
        print(f"explored: {rep.visited} configurations, {rep.edges} "
              f"edges, depth {rep.depth} "
              f"({rep.states_per_sec:,.0f} states/sec"
              + (f", {rep.workers} workers" if rep.workers > 1 else "")
              + (", exact visited set" if rep.exact else "") + ")")
        if args.symmetry:
            note = f" ({rep.symmetry_note})" if rep.symmetry_note else ""
            print(f"symmetry: group order {rep.symmetry_order}{note}")
        if args.por:
            if rep.por:
                print(f"por:      {rep.pruned} sleep-pruned expansions")
            else:
                print(f"por:      {rep.por_note}")
        if args.memory != "atomic":
            print(f"memory:   {args.memory} registers (adversary also "
                  f"chooses contended read values)")
        print(rep.guarantee())
        if not rep.ok:
            print(f"witness configuration: {rep.witness}")
        return 0 if rep.ok else 1
    if args.symmetry or args.por or args.workers != 1 or args.exact \
            or args.telemetry:
        print("error: --symmetry/--por/--workers/--exact/--telemetry "
              "require --engine fingerprints")
        return 2
    report = verify_safety(protocol, inputs, max_depth=args.depth,
                           max_states=args.max_states, memory=args.memory,
                           engine=args.engine)
    print(f"protocol: {protocol.name}, inputs {inputs}")
    if args.memory != "atomic":
        print(f"memory:   {args.memory} registers (adversary also "
              f"chooses contended read values)")
    print(report.guarantee())
    if not report.ok:
        print(f"witness configuration: {report.witness}")
    if args.memory != "atomic":
        # Weak semantics: additionally exhibit (and replay) the
        # strongest anomaly the semantics admits, if any — a
        # consistency violation, or a garbage read no regular register
        # could produce (safe-only behavior).
        from repro.checker import find_memory_anomaly, replay_witness

        witness = find_memory_anomaly(
            protocol, inputs, memory=args.memory,
            max_depth=args.depth, max_states=args.max_states,
        )
        if witness is None:
            print(f"no {args.memory}-memory anomaly within the "
                  f"explored space")
        else:
            print()
            print(witness.describe())
            final = replay_witness(protocol, inputs, args.memory,
                                   witness.steps)
            print(f"witness replays: final decisions "
                  f"{final.decisions(protocol)}")
    return 0 if report.ok else 1


def _cmd_impossibility(args: argparse.Namespace) -> int:
    from repro.checker import analyze_deterministic
    from repro.core import deterministic as det

    if args.protocol == "all":
        protocols = det.zoo()
    else:
        factory = getattr(det, args.protocol.replace("-", "_"), None)
        if factory is None:
            raise SystemExit(f"unknown zoo member {args.protocol!r}")
        protocols = (factory(),)
    for p in protocols:
        print(analyze_deterministic(p).render())
        print()
    return 0


def _cmd_game(args: argparse.Namespace) -> int:
    from repro.core import TwoProcessProtocol
    from repro.sched.optimal import solve_game

    inputs = tuple(args.inputs.split(","))
    sol = solve_game(TwoProcessProtocol(), inputs, cost_model=args.cost)
    print(f"two-processor protocol, inputs {inputs}")
    print(f"cost model:              {sol.cost_model}")
    print(f"worst-case expected cost {sol.value:.6f}")
    print(f"configurations:          {len(sol.values)}")
    print(f"value-iteration sweeps:  {sol.iterations}")
    print("(the paper's corollary bound is 10 per processor — "
          "the optimal adversary achieves it exactly)")
    return 0


def _cmd_tower(args: argparse.Namespace) -> int:
    from repro.registers import run_register_workload

    levels = (
        ("safe-cell", {}),
        ("regular-cell", {}),
        ("atomic-cell", {}),
        ("regular-from-safe", {}),
        ("unary-regular", {}),
        ("srsw-atomic", {"n_readers": 1}),
        ("mrsw-atomic", {"n_readers": 3, "n_reads": 6}),
    )
    order = {"broken": 0, "safe": 1, "regular": 2, "atomic": 3}
    print(f"{'level':<20} {'worst grade':<12} {'events/op':>10}")
    for level, kw in levels:
        worst, cost = "atomic", 0.0
        for seed in range(args.seeds):
            r = run_register_workload(level, seed=seed, **kw)
            if order[r.grade()] < order[worst]:
                worst = r.grade()
            cost += r.events_per_op
        print(f"{level:<20} {worst:<12} {cost / args.seeds:>10.1f}")
    return 0


def _print_histogram(name: str, hist) -> None:
    """Full distribution of one histogram, with proportional bars."""
    if not hist.total:
        return
    print(f"\n{name} (n={hist.total}, mean={hist.mean:.2f}, "
          f"p50={hist.p50}, p90={hist.p90}, p99={hist.p99}):")
    peak = max(hist.counts.values())
    for value in sorted(hist.counts):
        count = hist.counts[value]
        bar = "#" * max(1, round(40 * count / peak))
        print(f"  {value:>5}  {count:>8}  {bar}")


def _print_report(metrics, title: str) -> None:
    print(title)
    print()
    print(metrics.render())
    for name in ("steps_to_decide", "coin_flips_per_decision", "num_depth"):
        hist = metrics.histograms.get(name)
        if hist is not None:
            _print_histogram(name, hist)


def _write_prometheus(metrics, path: str) -> None:
    from repro.obs import prometheus_text

    with open(path, "w") as fh:
        fh.write(prometheus_text(metrics))
    print(f"prometheus: {path}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, render_span_tree

    if args.from_journal:
        from repro.obs import iter_spans
        from repro.obs.tracing import Span

        spans = [Span.from_dict(d) for d in iter_spans(args.from_journal)]
        if args.trace_id:
            spans = [s for s in spans if s.trace_id == args.trace_id]
        if not spans:
            print("(no spans in journal — schema v3 with a tracer "
                  "attached writes them)")
            return 1
        print(render_span_tree(spans))
        return 0

    import time

    from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                      SchedulerSpec)
    from repro.sim.runner import ExperimentRunner

    inputs = tuple(args.inputs.split(","))
    tracer = Tracer(clock=time.perf_counter if args.wall else None,
                    max_spans=args.max_spans)
    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec(args.protocol, len(inputs)),
        scheduler_factory=SchedulerSpec(args.scheduler),
        inputs_factory=ConstantInputs(inputs),
        seed=args.seed,
        sinks=(tracer,),
        memory=args.memory,
        engine=args.engine,
    )
    runner.run_one(args.index, args.max_steps)
    spans = tracer.trace()
    print(f"trace {spans[0].trace_id}  "
          f"(root_seed={args.seed}, run_index={args.index})")
    print(render_span_tree(spans))
    if args.otlp:
        from repro.obs.export import otlp_json_text

        with open(args.otlp, "w") as fh:
            fh.write(otlp_json_text(spans=spans))
        print(f"otlp: {args.otlp}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import os
    import time

    from repro.obs.telemetry import (latest_by_shard, read_fault_events,
                                     read_telemetry, render_top)

    def load():
        if not os.path.exists(args.path):
            return [], None
        beats = read_telemetry(args.path)
        # A supervised sweep interleaves fault records; their presence
        # turns on the faults column.  Plain sweeps render unchanged.
        events = read_fault_events(args.path)
        return beats, (events if events else None)

    if not args.follow:
        beats, events = load()
        print(render_top(beats, events))
        return 0
    try:
        while True:
            beats, events = load()
            # Clear-and-home keeps one live table, top(1)-style.
            print("\x1b[2J\x1b[H", end="")
            print(f"repro top — {args.path}")
            print(render_top(beats, events))
            latest = latest_by_shard(beats)
            if latest and all(b.done for b in latest.values()):
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import RunStore, StoreError

    try:
        store = RunStore(args.root)
        if args.store_command == "ls":
            entries = store.ls()
            if not entries:
                print("(empty store)")
                return 0
            for e in entries:
                seeds = ",".join(map(str, e.seeds))
                print(f"{e.spec_hash[:12]}  {e.n_shards:>4} shards  "
                      f"{e.n_runs:>8} runs  {e.bytes:>10} B  "
                      f"seeds={seeds}  {e.describe}")
            return 0
        if args.store_command == "show":
            import json

            print(json.dumps(store.show(args.spec_hash), indent=2,
                             sort_keys=True))
            return 0
        if args.store_command == "verify":
            verdicts = store.verify(args.spec_hash)
            if not verdicts:
                print("(no committed shards)")
                return 0
            bad = 0
            for v in verdicts:
                if v.ok:
                    print(f"ok   {v.path}  {v.detail}")
                else:
                    bad += 1
                    print(f"BAD  {v.path}")
                    print(f"     {v.detail}")
            print(f"{len(verdicts)} shards checked, {bad} damaged"
                  + ("" if not bad else " (a healing resume — rerun "
                     "the sweep with --store — will quarantine and "
                     "recompute them)"))
            return 0 if not bad else 1
        # gc
        keep = args.keep.split(",") if args.keep else None
        removed = store.gc(keep=keep, dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        if not removed:
            print(f"{verb}: nothing")
        for path in removed:
            print(f"{verb}: {path}")
        return 0
    except StoreError as exc:
        raise SystemExit(str(exc))


def _cmd_journal_verify(args: argparse.Namespace) -> int:
    from repro.obs import verify_journal

    verdict = verify_journal(args.path)
    print(verdict.render())
    return 0 if verdict.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import MetricsRegistry, PhaseTimer

    if args.from_journal:
        from repro.obs import replay_journal

        metrics = replay_journal(args.from_journal)
        _print_report(metrics, f"replayed journal: {args.from_journal}")
        if args.prometheus:
            _write_prometheus(metrics, args.prometheus)
        return 0

    from repro.parallel.tasks import (ConstantInputs, ProtocolSpec,
                                      SchedulerSpec)
    from repro.sim.runner import ExperimentRunner

    if args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    supervise = (args.supervised or args.shard_timeout is not None
                 or args.max_retries is not None
                 or args.on_fault is not None)
    policy = None
    if supervise:
        from repro.parallel.supervisor import SupervisorPolicy

        kwargs = {}
        if args.shard_timeout is not None:
            kwargs["shard_timeout"] = args.shard_timeout
        if args.max_retries is not None:
            kwargs["max_retries"] = args.max_retries
        if args.on_fault is not None:
            kwargs["on_fault"] = args.on_fault
        try:
            policy = SupervisorPolicy(**kwargs)
        except ValueError as exc:
            raise SystemExit(str(exc))
    if (args.timing or args.profile) and (args.workers > 1 or supervise):
        raise SystemExit("--timing/--profile need --workers 1 "
                         "(wall-clock phases cannot be attributed "
                         "across worker processes, which supervised "
                         "batches always use)")
    if args.folded and not args.profile:
        raise SystemExit("--folded needs --profile (it exports the "
                         "profiler's component attribution)")
    if args.resume and not args.store:
        raise SystemExit("--resume needs --store (it resumes from that "
                         "store's committed shards)")
    store = None
    if args.store:
        from repro.store import RunStore

        if args.timing or args.profile:
            raise SystemExit("--store needs the sharded engine, which "
                             "cannot host --timing/--profile sinks")
        store = RunStore(args.store)

    inputs = tuple(args.inputs.split(","))
    protocol_name = args.protocol
    metrics = MetricsRegistry()
    timer = PhaseTimer() if args.timing else None
    profiler = None
    if args.profile:
        from repro.obs import TimeAttributionProfiler

        profiler = TimeAttributionProfiler(
            (protocol_name, args.scheduler, args.memory))
    sinks = tuple(s for s in (metrics, timer, profiler) if s is not None)
    if args.resume:
        # Refuse to silently restart from scratch: the exact content
        # address this sweep will run under must already hold shards.
        from repro.spec import ObsOptions, RunSpec

        probe = RunSpec(
            protocol=ProtocolSpec(protocol_name, len(inputs)),
            scheduler=SchedulerSpec(args.scheduler),
            inputs=ConstantInputs(inputs),
            memory=args.memory,
            engine=args.engine,
            max_steps=args.max_steps,
            obs=ObsOptions(metrics=True,
                           journal=args.journal is not None),
        )
        probe_hash = probe.spec_hash()
        if not any(e.spec_hash == probe_hash and args.seed in e.seeds
                   for e in store.ls()):
            raise SystemExit(
                f"--resume found no committed shards in {args.store!r} "
                f"for this sweep (spec {probe_hash[:12]}…, seed "
                f"{args.seed}); check the sweep parameters, or drop "
                f"--resume to start it from scratch")

    runner = ExperimentRunner(
        protocol_factory=ProtocolSpec(protocol_name, len(inputs)),
        scheduler_factory=SchedulerSpec(args.scheduler),
        inputs_factory=ConstantInputs(inputs),
        seed=args.seed,
        sinks=sinks,
        memory=args.memory,
        engine=args.engine,
    )
    stats = runner.run_many(
        args.runs,
        max_steps=args.max_steps,
        workers=args.workers,
        shard_size=args.shard_size,
        journal_path=args.journal,
        telemetry_path=args.telemetry,
        store=store,
        supervise=supervise,
        policy=policy,
    )

    sharded = (f", {args.workers} workers"
               if args.workers > 1 else "")
    if supervise:
        sharded += ", supervised"
    _print_report(
        metrics,
        f"{args.runs} runs of {protocol_name!r} on inputs {args.inputs} "
        f"under {args.scheduler!r} (seed {args.seed}{sharded})",
    )
    if timer is not None:
        print("\nphase timing:")
        print(timer.render())
    if profiler is not None:
        print("\ntime attribution:")
        print(profiler.render())
        if args.folded:
            from repro.obs import folded_stacks

            with open(args.folded, "w") as fh:
                fh.write(folded_stacks(profiler.stacks()))
            print(f"folded stacks: {args.folded}")
    if args.prometheus:
        _write_prometheus(metrics, args.prometheus)
    if stats.journal_path is not None:
        print(f"\njournal: {stats.journal_path} "
              f"({stats.journal_events} events)")
    if stats.store is not None:
        acct = stats.store
        print(f"\nstore: {args.store} (spec {acct.spec_hash[:12]})")
        print(f"  shards: {acct.hits} from cache, {acct.misses} executed")
        print(f"  runs:   {acct.runs_from_cache} from cache, "
              f"{acct.runs_executed} executed")
    if stats.faults is not None:
        rep = stats.faults
        print(f"\nsupervisor: {rep.n_faults} faults absorbed "
              f"({rep.n_retries} retries, {rep.n_degradations} "
              f"degradations, {len(rep.healed)} healed shard files)")
        for kind, n in sorted(rep.counts().items()):
            print(f"  {kind}: {n}")
        for event in rep.events:
            where = (f"shard {event.shard} attempt {event.attempt}"
                     if event.shard >= 0 else "resume preamble")
            print(f"  {where}: {event.kind} -> {event.action}")
        if not rep.ok:
            ranges = ", ".join(f"[{a}, {b})"
                               for a, b in rep.quarantined_ranges())
            print(f"  QUARANTINED run ranges (missing from results): "
                  f"{ranges}")
    if args.telemetry:
        print(f"telemetry: {args.telemetry}")
    if args.json:
        from repro.analysis.reporting import dump_records, record_batch

        record = record_batch(
            experiment="cli_report",
            protocol=protocol_name,
            scheduler=args.scheduler,
            inputs=args.inputs,
            seed=args.seed,
            stats=stats,
        )
        dump_records([record], path=args.json)
        print(f"json record: {args.json}")
    violations = stats.n_consistency_violations
    quarantined = stats.faults is not None and not stats.faults.ok
    return 0 if violations == 0 and not quarantined else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Chor-Israeli-Li (PODC 1987) reproduction: "
                     "randomized wait-free consensus with atomic "
                     "read/write registers."),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("solve", help="run one consensus instance")
    p.add_argument("--protocol", default="two",
                   choices=["two", "three-unbounded", "three-bounded",
                            "n", "naive"])
    p.add_argument("--inputs", default="a,b",
                   help="comma-separated input values, one per processor")
    p.add_argument("--scheduler", default="random",
                   choices=["random", "round-robin", "oblivious",
                            "split-vote", "laggard-freezer"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-steps", type=int, default=100_000)
    p.add_argument("--trace", action="store_true")
    p.add_argument("--diagram", action="store_true",
                   help="render the trace as a space-time diagram")
    p.add_argument("--trace-limit", type=int, default=40)
    p.add_argument("--metrics", action="store_true",
                   help="attach a metrics registry and print it")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="stream a JSONL event journal to PATH")
    p.add_argument("--memory", default="atomic",
                   choices=["atomic", "regular", "safe"],
                   help="register semantics the run executes under "
                        "(see docs/MODEL.md)")
    _engine_argument(p, "sim",
                     "execution backend; 'vector' runs the compiled "
                     "table IR — see docs/IR.md")
    p.add_argument("--read-policy", default=None,
                   choices=["commit", "adversarial", "random"],
                   help="how the adversary resolves weak-memory reads "
                        "(default adversarial; needs --memory "
                        "regular|safe)")
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("verify", help="exhaustive safety verification")
    p.add_argument("--protocol", default="two",
                   choices=["two", "three-unbounded", "three-bounded",
                            "n", "naive"])
    p.add_argument("--inputs", default="a,b")
    p.add_argument("--depth", type=int, default=None,
                   help="depth budget (omit for full exploration)")
    p.add_argument("--max-states", type=int, default=500_000)
    p.add_argument("--memory", default="atomic",
                   choices=["atomic", "regular", "safe"],
                   help="register semantics to verify under; weak "
                        "semantics also search for an anomaly witness")
    _engine_argument(p, "checker",
                     "explorer backend: 'tables' steps the compiled "
                     "IR (identical graph, any memory semantics); "
                     "'fingerprints' runs the scalable fingerprinted "
                     "search (docs/CHECKER.md) — identical verdict "
                     "either way")
    p.add_argument("--symmetry", action="store_true",
                   help="canonicalize over the verified processor-"
                        "permutation group before fingerprinting "
                        "(engine fingerprints only)")
    p.add_argument("--por", action="store_true",
                   help="sleep-set partial-order reduction; auto-"
                        "disabled (with a note) under depth budgets, "
                        "weak memory, or --symmetry (engine "
                        "fingerprints only)")
    p.add_argument("--workers", type=int, default=1,
                   help="shard BFS levels across this many processes "
                        "(engine fingerprints only)")
    p.add_argument("--exact", action="store_true",
                   help="store packed state vectors instead of 64-bit "
                        "fingerprints: no collision risk, more memory "
                        "(engine fingerprints only)")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="stream exploration heartbeats to this JSONL "
                        "file ('repro top --telemetry PATH' follows "
                        "them live; engine fingerprints only)")
    p.set_defaults(func=_cmd_verify)

    p = sub.add_parser("impossibility",
                       help="Theorem 4 certificates for deterministic "
                            "protocols")
    p.add_argument("--protocol", default="all",
                   help="zoo member (obstinate, mirror, priority, "
                        "greedy-min) or 'all'")
    p.set_defaults(func=_cmd_impossibility)

    p = sub.add_parser("game",
                       help="solve the two-processor scheduling game")
    p.add_argument("--inputs", default="a,b")
    p.add_argument("--cost", default="processor:0",
                   help="'processor:<pid>' or 'total'")
    p.set_defaults(func=_cmd_game)

    p = sub.add_parser("tower", help="grade the register constructions")
    p.add_argument("--seeds", type=int, default=15)
    p.set_defaults(func=_cmd_tower)

    p = sub.add_parser(
        "report",
        help="instrumented Monte-Carlo batch with metrics report")
    p.add_argument("--protocol", default="two",
                   choices=["two", "three-unbounded", "three-bounded",
                            "n", "naive"])
    p.add_argument("--inputs", default="a,b",
                   help="comma-separated input values, one per processor")
    p.add_argument("--scheduler", default="random",
                   choices=["random", "round-robin", "oblivious",
                            "split-vote", "laggard-freezer",
                            "read-adversary"])
    p.add_argument("--runs", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-steps", type=int, default=4000)
    p.add_argument("--workers", type=int, default=1,
                   help="shard the batch across N worker processes "
                        "(results are bit-identical at any N)")
    p.add_argument("--shard-size", type=int, default=None,
                   help="runs per shard (default: one shard per worker)")
    p.add_argument("--journal", metavar="PATH", default=None,
                   help="stream a JSONL event journal to PATH")
    p.add_argument("--from-journal", metavar="PATH", default=None,
                   help="skip running; replay PATH into the metrics report")
    p.add_argument("--memory", default="atomic",
                   choices=["atomic", "regular", "safe"],
                   help="register semantics every run executes under")
    _engine_argument(p, "sim",
                     "execution backend; 'vector' steps the whole "
                     "batch in lockstep through the compiled table IR "
                     "— see docs/IR.md")
    p.add_argument("--store", metavar="DIR", default=None,
                   help="content-addressed run store: shards already "
                        "committed for this exact sweep are loaded "
                        "instead of executed, finished shards are "
                        "committed as they complete (docs/STORE.md)")
    p.add_argument("--resume", action="store_true",
                   help="with --store: expect prior committed shards "
                        "for this sweep and fail if there are none "
                        "(guards against silently restarting from "
                        "scratch after a parameter typo)")
    p.add_argument("--timing", action="store_true",
                   help="attach a PhaseTimer and print phase wall-times")
    p.add_argument("--profile", action="store_true",
                   help="attach a time-attribution profiler (scheduler/"
                        "transition/memory/kernel/hooks split)")
    p.add_argument("--folded", metavar="PATH", default=None,
                   help="with --profile: write flamegraph-ready folded "
                        "stacks to PATH")
    p.add_argument("--prometheus", metavar="PATH", default=None,
                   help="write the metrics in Prometheus text format "
                        "to PATH")
    p.add_argument("--telemetry", metavar="PATH", default=None,
                   help="stream live per-shard heartbeats (JSONL) to "
                        "PATH; follow with 'repro top PATH'")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also dump an ExperimentRecord JSON file to PATH")
    p.add_argument("--supervised", action="store_true",
                   help="run shards under the fault-tolerant "
                        "supervisor: watchdogs, bounded deterministic "
                        "retries, quarantine instead of sweep death — "
                        "results stay bit-identical (docs/ROBUSTNESS.md)")
    p.add_argument("--shard-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="kill and retry any shard attempt exceeding "
                        "this wall-clock budget (implies --supervised)")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="retries per shard before quarantine (implies "
                        "--supervised; default 2)")
    p.add_argument("--on-fault", default=None,
                   choices=["retry", "degrade", "quarantine", "fail"],
                   help="fault policy (implies --supervised): retry "
                        "on the same engine, degrade down the engine "
                        "ladder, quarantine immediately, or fail the "
                        "sweep on the first fault (default retry)")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "trace",
        help="render the deterministic span tree of one seeded run")
    p.add_argument("--protocol", default="two",
                   choices=["two", "three-unbounded", "three-bounded",
                            "n", "naive"])
    p.add_argument("--inputs", default="a,b",
                   help="comma-separated input values, one per processor")
    p.add_argument("--scheduler", default="random",
                   choices=["random", "round-robin", "oblivious",
                            "split-vote", "laggard-freezer",
                            "read-adversary"])
    p.add_argument("--seed", type=int, default=0,
                   help="root seed of the batch the run belongs to")
    p.add_argument("--index", type=int, default=0,
                   help="run index within the batch (the replay key is "
                        "(seed, index))")
    p.add_argument("--max-steps", type=int, default=4000)
    p.add_argument("--max-spans", type=int, default=4096,
                   help="per-run span budget (excess steps are counted "
                        "as dropped, not recorded)")
    p.add_argument("--memory", default="atomic",
                   choices=["atomic", "regular", "safe"])
    _engine_argument(p, "sim",
                     "execution backend the traced run replays on "
                     "(span ids are deterministic either way)")
    p.add_argument("--wall", action="store_true",
                   help="also record wall-clock durations (wall_us "
                        "span attributes; ids stay deterministic)")
    p.add_argument("--otlp", metavar="PATH", default=None,
                   help="write the trace as OTLP-style JSON to PATH")
    p.add_argument("--from-journal", metavar="PATH", default=None,
                   help="skip running; render spans recorded in a "
                        "schema-v3 journal")
    p.add_argument("--trace-id", default=None,
                   help="with --from-journal: only this trace")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "top",
        help="live progress table for a sweep writing --telemetry")
    p.add_argument("path", help="telemetry JSONL file the sweep writes")
    p.add_argument("--follow", action="store_true",
                   help="keep refreshing until every shard is done")
    p.add_argument("--interval", type=float, default=1.0,
                   help="refresh period in seconds (with --follow)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser("journal", help="journal maintenance utilities")
    jsub = p.add_subparsers(dest="journal_command", required=True)
    jp = jsub.add_parser(
        "verify",
        help="check a JSONL journal for truncation or damage")
    jp.add_argument("path")
    jp.set_defaults(func=_cmd_journal_verify)

    p = sub.add_parser(
        "store",
        help="inspect or garbage-collect a content-addressed run store")
    ssub = p.add_subparsers(dest="store_command", required=True)
    sp = ssub.add_parser("ls", help="one line per stored spec")
    sp.add_argument("root", help="store directory")
    sp.set_defaults(func=_cmd_store)
    sp = ssub.add_parser("show", help="JSON detail of one stored spec")
    sp.add_argument("root", help="store directory")
    sp.add_argument("spec_hash",
                    help="spec hash (an unambiguous prefix is enough)")
    sp.set_defaults(func=_cmd_store)
    sp = ssub.add_parser(
        "verify",
        help="checksum every committed shard (format, SHA-256, key) "
             "and report damage without modifying anything")
    sp.add_argument("root", help="store directory")
    sp.add_argument("spec_hash", nargs="?", default=None,
                    help="optionally narrow to one spec (an "
                         "unambiguous prefix is enough)")
    sp.set_defaults(func=_cmd_store)
    sp = ssub.add_parser(
        "gc",
        help="remove .tmp orphans and quarantined .corrupt files "
             "(always) and, with --keep, every spec tree not matching "
             "a kept prefix")
    sp.add_argument("root", help="store directory")
    sp.add_argument("--keep", default=None, metavar="PREFIX[,PREFIX]",
                    help="comma-separated spec-hash prefixes to keep; "
                         "omit to only sweep crash-orphaned .tmp files")
    sp.add_argument("--dry-run", action="store_true",
                    help="print what would be removed without removing")
    sp.set_defaults(func=_cmd_store)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish model violations (bugs in a protocol under
test, which are *interesting* results) from misuse of the library API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ProtocolError(ReproError):
    """A protocol implementation violated the automaton contract.

    Examples: returning a non-hashable state, emitting an empty branch
    list, or emitting branch probabilities that do not sum to one.
    """


class AccessViolation(ReproError):
    """A processor performed a register operation it is not entitled to.

    The paper's model associates every shared register with a set of
    readers and a set of writers (Section 2).  The kernel enforces those
    sets; violating them indicates a mis-wired protocol.
    """


class SimulationError(ReproError):
    """The simulation kernel was driven into an invalid state.

    Examples: scheduling a halted processor, stepping a finished run, or
    a scheduler returning a processor id outside the system.
    """


class VerificationError(ReproError):
    """A correctness property of a protocol was found to be violated.

    Raised by the checker package when consistency or nontriviality fails
    on a trace or during exhaustive state exploration.  For a protocol
    from the paper this is a reproduction failure; for a deliberately
    broken baseline it is the expected outcome.
    """


class ExplorationLimitError(ReproError):
    """State-space exploration exceeded its configured budget.

    Carries partial results so callers can distinguish "property verified
    up to depth d" from "property verified on the full reachable space".
    """

    def __init__(self, message: str, states_explored: int = 0) -> None:
        super().__init__(message)
        self.states_explored = states_explored


class RegisterSemanticsError(ReproError):
    """An operation violated the interval-time register model.

    Raised by the ``repro.registers`` substrate, e.g. when two operations
    of the same sequential process overlap in time.
    """

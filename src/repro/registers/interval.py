"""Interval-time concurrency model for register constructions.

The consensus simulator (:mod:`repro.sim`) serializes everything — the
right model *given* atomic registers, per the paper's Section 1
argument.  To build atomic registers out of weaker ones, however, the
weakness must be observable: reads must be able to *overlap* writes.
This module provides that finer-grained world:

* a global integer clock of *events*;
* base **cells** whose primitive operations are two events apart
  (``begin_…`` / ``end_…``), so other threads can run in between;
* three cell semantics:

  - :class:`SafeCell` — a read overlapping a write returns an arbitrary
    domain value (the "flickering" hardware bit);
  - :class:`RegularCell` — a read overlapping writes returns the old
    value or any overlapping write's value;
  - :class:`AtomicCell` — reads return the latest committed value
    (writes linearize at their begin event, reads at their end; a valid
    linearization, used as the reference implementation);

* :class:`Thread` — a sequential program, written as a generator that
  yields between primitive events;
* :class:`IntervalSim` — the interleaving engine, driven by a seeded
  (or adversarial) :class:`IntervalScheduler`.

Nondeterminism in weak cells (which garbage a safe read returns, which
overlapping value a regular read picks) is resolved by a *resolver*
callback, defaulting to seeded-random — tests also plug in adversarial
resolvers that hunt for violations.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Generator, Hashable, List, Optional, Sequence, Tuple

from repro.errors import RegisterSemanticsError
from repro.sim.rng import ReplayableRng


Resolver = Callable[[str, Sequence[Hashable]], Hashable]
"""Callback resolving weak-cell nondeterminism.

Called as ``resolver(kind, choices)`` where ``kind`` is "safe" or
"regular"; must return one of ``choices``.
"""


class _Clock:
    """Monotonic event counter shared by all cells of one simulation."""

    def __init__(self) -> None:
        self.now = 0

    def tick(self) -> int:
        self.now += 1
        return self.now


@dataclasses.dataclass
class _WriteSpan:
    """A base-cell write in progress or completed."""

    value: Hashable
    begin: int
    end: Optional[int] = None


class BaseCell:
    """Common machinery of the three cell semantics.

    A cell is single-writer (the constructions only need that) but
    multi-reader; it tracks the intervals of all writes so overlap
    can be decided per read.
    """

    def __init__(self, name: str, clock: _Clock, initial: Hashable,
                 domain: Sequence[Hashable], resolver: Resolver) -> None:
        self.name = name
        self._clock = clock
        self._domain = tuple(domain)
        self._resolver = resolver
        self._init: Hashable = initial
        self._current: Optional[_WriteSpan] = None
        self._writes: List[_WriteSpan] = []
        self._pending_reads: Dict[int, int] = {}  # token -> begin event
        self._next_token = 0
        self.event_count = 0

    # -- writer side ----------------------------------------------------

    def begin_write(self, value: Hashable) -> None:
        if self._current is not None:
            raise RegisterSemanticsError(
                f"cell {self.name}: overlapping writes by the single writer"
            )
        self.event_count += 1
        self._current = _WriteSpan(value=value, begin=self._clock.tick())
        self._writes.append(self._current)

    def end_write(self) -> None:
        if self._current is None:
            raise RegisterSemanticsError(
                f"cell {self.name}: end_write without begin_write"
            )
        self.event_count += 1
        self._current.end = self._clock.tick()
        self._current = None

    # -- reader side ----------------------------------------------------

    def begin_read(self) -> int:
        self.event_count += 1
        token = self._next_token
        self._next_token += 1
        self._pending_reads[token] = self._clock.tick()
        return token

    def end_read(self, token: int) -> Hashable:
        begin = self._pending_reads.pop(token)
        self.event_count += 1
        end = self._clock.tick()
        overlapping = [
            w for w in self._writes
            if w.begin < end and (w.end is None or w.end > begin)
        ]
        # Value committed before this read began: the last write that
        # finished before `begin` (tracked incrementally would be
        # faster; histories here are short).
        old = self._value_before(begin)
        return self._resolve(old, overlapping)

    def _value_before(self, t: int) -> Hashable:
        candidates = [w for w in self._writes if w.end is not None and w.end < t]
        if not candidates:
            return self._initial_value()
        return max(candidates, key=lambda w: w.end).value

    def _initial_value(self) -> Hashable:
        # The first committed value ever; stored implicitly: committed
        # before any write completes is the construction-time initial.
        return self._init

    def _resolve(self, old: Hashable, overlapping: List[_WriteSpan]) -> Hashable:
        raise NotImplementedError


class SafeCell(BaseCell):
    """Lamport's weakest register: overlap ⇒ arbitrary domain value."""

    def _resolve(self, old, overlapping):
        if not overlapping:
            return old
        return self._resolver("safe", self._domain)


class RegularCell(BaseCell):
    """Overlap ⇒ the old value or any overlapping write's value."""

    def _resolve(self, old, overlapping):
        if not overlapping:
            return old
        choices = [old] + [w.value for w in overlapping]
        return self._resolver("regular", choices)


class AtomicCell(BaseCell):
    """Reference atomic cell: write linearizes at begin, read at end."""

    def _resolve(self, old, overlapping):
        # Latest value whose write began before this read ended — i.e.
        # the most recent begin-linearized write.
        if not overlapping:
            return old
        return max(overlapping, key=lambda w: w.begin).value


# ----------------------------------------------------------------------
# Threads and the interleaving engine
# ----------------------------------------------------------------------

Program = Generator[None, None, None]


class Thread:
    """A sequential program: a generator yielding at primitive events."""

    def __init__(self, name: str, program: Program) -> None:
        self.name = name
        self._program = program
        self.finished = False

    def step(self) -> None:
        if self.finished:
            raise RegisterSemanticsError(f"stepping finished thread {self.name}")
        try:
            next(self._program)
        except StopIteration:
            self.finished = True


class IntervalScheduler:
    """Chooses which live thread advances next (seeded random default)."""

    def __init__(self, rng: ReplayableRng) -> None:
        self._rng = rng

    def choose(self, live: Sequence[Thread]) -> Thread:
        return self._rng.choice(live)


class IntervalSim:
    """The interval-model world: clock + cells + threads + interleaving.

    Example
    -------
    >>> from repro.sim.rng import ReplayableRng
    >>> sim = IntervalSim(seed=1)
    >>> cell = sim.safe_cell("x", initial=0, domain=(0, 1))
    >>> def writer():
    ...     yield from sim.write_cell(cell, 1)
    >>> def reader(out):
    ...     v = yield from sim.read_cell(cell)
    ...     out.append(v)
    >>> out = []
    >>> sim.spawn("w", writer()); sim.spawn("r", reader(out))
    >>> sim.run()
    >>> out[0] in (0, 1)
    True
    """

    def __init__(self, seed: int = 0,
                 resolver: Optional[Resolver] = None) -> None:
        self.clock = _Clock()
        self._rng = ReplayableRng(seed)
        self._resolver = resolver or self._random_resolver
        self._threads: List[Thread] = []
        self._scheduler = IntervalScheduler(self._rng.child("interleave"))
        self.cells: List[BaseCell] = []

    def _random_resolver(self, kind: str, choices: Sequence[Hashable]) -> Hashable:
        return self._rng.choice(choices)

    # -- cell factories --------------------------------------------------

    def safe_cell(self, name: str, initial: Hashable,
                  domain: Sequence[Hashable]) -> SafeCell:
        cell = SafeCell(name, self.clock, initial, domain, self._resolver)
        self.cells.append(cell)
        return cell

    def regular_cell(self, name: str, initial: Hashable,
                     domain: Sequence[Hashable]) -> RegularCell:
        cell = RegularCell(name, self.clock, initial, domain, self._resolver)
        self.cells.append(cell)
        return cell

    def atomic_cell(self, name: str, initial: Hashable,
                    domain: Sequence[Hashable] = ()) -> AtomicCell:
        cell = AtomicCell(name, self.clock, initial, domain, self._resolver)
        self.cells.append(cell)
        return cell

    # -- primitive op generators -----------------------------------------

    @staticmethod
    def write_cell(cell: BaseCell, value: Hashable) -> Program:
        """Two-event write; other threads may run between the events."""
        cell.begin_write(value)
        yield
        cell.end_write()

    @staticmethod
    def read_cell(cell: BaseCell):
        """Two-event read returning the (semantics-resolved) value."""
        token = cell.begin_read()
        yield
        return cell.end_read(token)

    # -- execution --------------------------------------------------------

    def spawn(self, name: str, program: Program) -> Thread:
        thread = Thread(name, program)
        self._threads.append(thread)
        return thread

    def run(self, max_events: int = 1_000_000) -> None:
        """Interleave all threads to completion."""
        events = 0
        while True:
            live = [t for t in self._threads if not t.finished]
            if not live:
                return
            if events >= max_events:
                raise RegisterSemanticsError(
                    f"interval simulation exceeded {max_events} events"
                )
            self._scheduler.choose(live).step()
            events += 1

    @property
    def total_cell_events(self) -> int:
        """Primitive events across all cells (the E9 cost metric)."""
        return sum(cell.event_count for cell in self.cells)

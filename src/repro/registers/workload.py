"""Workload driver for register constructions.

Runs one writer thread and ``n_readers`` reader threads against a
register under test, under a seeded adversarial interleaving, records
the logical operation history, and grades it with the semantic
checkers.  Written values are unique (an increasing counter), which is
what makes the checkers complete.

This is the engine behind benchmark E9 and the register test suite:
the tower's constructions must grade at (or above) their advertised
level, and the weak baselines must *fail* the stronger checks under at
least some seeds — a checker that never rejects anything proves
nothing.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, List, Optional, Sequence

from repro.registers.conditions import (
    CheckResult,
    check_atomic,
    check_regular,
    check_safe,
)
from repro.registers.constructions import Register, build_tower
from repro.registers.history import History, Interval
from repro.registers.interval import IntervalSim


@dataclasses.dataclass
class WorkloadReport:
    """Everything one workload run produced."""

    level: str
    history: History
    safe: CheckResult
    regular: CheckResult
    atomic: CheckResult
    primitive_events: int
    logical_ops: int

    @property
    def events_per_op(self) -> float:
        """Primitive cost per logical operation (the E9 overhead)."""
        if self.logical_ops == 0:
            return 0.0
        return self.primitive_events / self.logical_ops

    def grade(self) -> str:
        """The strongest semantics this history satisfied."""
        if self.atomic.ok:
            return "atomic"
        if self.regular.ok:
            return "regular"
        if self.safe.ok:
            return "safe"
        return "broken"


def _make_writer(sim: IntervalSim, reg: Register, history: History,
                 values: Sequence[Hashable]):
    def program():
        for value in values:
            invoke = sim.clock.tick()
            yield
            yield from reg.write_gen(value)
            respond = sim.clock.tick()
            history.record(Interval(kind="write", value=value, thread="W",
                                    invoke=invoke, respond=respond))
    return program()


def _make_reader(sim: IntervalSim, reg: Register, history: History,
                 reader: int, n_reads: int):
    def program():
        for _ in range(n_reads):
            invoke = sim.clock.tick()
            yield
            value = yield from reg.read_gen(reader)
            respond = sim.clock.tick()
            history.record(Interval(kind="read", value=value,
                                    thread=f"R{reader}", invoke=invoke,
                                    respond=respond))
    return program()


def run_register_workload(
    level: str,
    seed: int,
    n_writes: int = 8,
    n_readers: int = 2,
    n_reads: int = 8,
    domain: Optional[Sequence[Hashable]] = None,
    resolver=None,
) -> WorkloadReport:
    """Run one seeded workload against a tower level and grade it.

    The workload brackets every logical operation with explicit clock
    ticks, so zero-cell-event operations (e.g. skipped redundant
    writes) still have well-formed intervals.
    """
    if level == "srsw-atomic":
        # Single-reader construction: clamp rather than crash, so the
        # one-liner ``run_register_workload("srsw-atomic", seed=0)``
        # does the sensible thing.
        n_readers = 1
    if level == "regular-from-safe":
        # A bit register: alternate 0/1 (unique values are impossible,
        # so only the safe/regular checks apply — which is all this
        # level claims).
        domain = (0, 1)
        values: Sequence[Hashable] = tuple(
            (i + 1) % 2 for i in range(n_writes)
        )
    else:
        values = tuple(range(1, n_writes + 1))
        if domain is None:
            domain = (0,) + tuple(values)
    initial = domain[0]

    sim = IntervalSim(seed=seed, resolver=resolver)
    reg = build_tower(sim, level, domain=domain, initial=initial,
                      n_readers=max(n_readers, 1))
    history = History(initial=initial)

    sim.spawn("W", _make_writer(sim, reg, history, values))
    for r in range(n_readers):
        sim.spawn(f"R{r}", _make_reader(sim, reg, history, r, n_reads))
    sim.run()

    return WorkloadReport(
        level=level,
        history=history,
        safe=check_safe(history),
        regular=check_regular(history),
        atomic=check_atomic(history),
        primitive_events=reg.primitive_events,
        logical_ops=len(history),
    )

"""Operation histories of high-level register operations.

A :class:`History` records the invoke/respond events of every *logical*
read and write performed on a register under test, in the interval
model's global clock.  The semantic checkers in
:mod:`repro.registers.conditions` grade histories; the workload driver
in :mod:`repro.registers.workload` produces them.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class Interval:
    """One completed logical operation on the register under test.

    ``kind`` is "read" or "write"; ``value`` is the value written or
    returned; ``thread`` identifies the caller (reads carry the reader
    id, writes the writer).  ``invoke`` / ``respond`` are global clock
    events, with ``invoke < respond``.
    """

    kind: str
    value: Hashable
    thread: str
    invoke: int
    respond: int

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad operation kind {self.kind!r}")
        if not self.invoke < self.respond:
            raise ValueError(
                f"operation must take time: invoke={self.invoke} "
                f"respond={self.respond}"
            )

    def precedes(self, other: "Interval") -> bool:
        """Real-time order: this op finished before the other began."""
        return self.respond < other.invoke

    def overlaps(self, other: "Interval") -> bool:
        return not (self.precedes(other) or other.precedes(self))

    def render(self) -> str:
        arrow = "→" if self.kind == "read" else "←"
        return (
            f"[{self.invoke:>4}..{self.respond:>4}] {self.thread}: "
            f"{self.kind} {arrow} {self.value!r}"
        )


class History:
    """All completed operations on one logical register.

    ``initial`` is the register's initial value (what reads before any
    write must return).
    """

    def __init__(self, initial: Hashable) -> None:
        self.initial = initial
        self._ops: List[Interval] = []

    def record(self, op: Interval) -> None:
        self._ops.append(op)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Interval]:
        return iter(sorted(self._ops, key=lambda o: o.invoke))

    @property
    def reads(self) -> List[Interval]:
        return [op for op in self if op.kind == "read"]

    @property
    def writes(self) -> List[Interval]:
        return [op for op in self if op.kind == "write"]

    def writes_are_sequential(self) -> bool:
        """True iff no two writes overlap (single-writer histories)."""
        ws = self.writes
        return all(a.precedes(b) for a, b in zip(ws, ws[1:]))

    def writes_are_unique(self) -> bool:
        """True iff all written values are distinct (checker-friendly)."""
        values = [w.value for w in self.writes]
        return len(values) == len(set(values))

    def render(self) -> str:
        return "\n".join(op.render() for op in self)

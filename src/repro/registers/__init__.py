"""The register-implementability substrate (Lamport [5]).

The paper's model rests on a hardware claim: bounded-size single-writer
single-reader *atomic* registers "can be implemented from existing low
level hardware", citing Lamport's *On Interprocess Communication*.
This subpackage makes the claim executable: it provides the classic
construction tower

    flickering safe bit
      → regular bit          (skip redundant writes)
      → k-valued regular     (unary encoding, reads up / writes down)
      → SRSW atomic          (sequence numbers kill new/old inversion)
      → MRSW atomic          (per-reader copies + reader gossip)

running inside an interval-time concurrency model
(:mod:`repro.registers.interval`) where operations genuinely overlap,
with weak-register return values resolved adversarially.  Histories of
high-level operations are checked against the formal register semantics
(safe / regular / atomic) by :mod:`repro.registers.conditions`.
"""

from repro.registers.interval import (
    AtomicCell,
    IntervalScheduler,
    IntervalSim,
    RegularCell,
    SafeCell,
    Thread,
)
from repro.registers.history import History, Interval
from repro.registers.conditions import (
    check_atomic,
    check_regular,
    check_safe,
)
from repro.registers.constructions import (
    AtomicFromRegular,
    CellRegister,
    MRSWAtomicFromSRSW,
    RegularFromSafe,
    UnaryRegularRegister,
    build_tower,
)
from repro.registers.workload import (
    WorkloadReport,
    run_register_workload,
)

__all__ = [
    "AtomicCell",
    "IntervalScheduler",
    "IntervalSim",
    "RegularCell",
    "SafeCell",
    "Thread",
    "History",
    "Interval",
    "check_atomic",
    "check_regular",
    "check_safe",
    "AtomicFromRegular",
    "CellRegister",
    "MRSWAtomicFromSRSW",
    "RegularFromSafe",
    "UnaryRegularRegister",
    "build_tower",
    "WorkloadReport",
    "run_register_workload",
]

"""Semantic checkers for register histories (Lamport's hierarchy).

Given a single-writer history with distinct written values (the
workload driver guarantees both), the three register classes have
clean characterizations:

* **safe** — a read that overlaps no write returns the most recently
  completed write's value (reads under overlap may return anything in
  the domain, so only the quiescent condition is checkable);
* **regular** — every read returns the most recently completed write's
  value or the value of some overlapping write;
* **atomic** — the history is regular *and* has no new/old inversion:
  if read r₁ finishes before read r₂ starts, r₂ must not return an
  older write than r₁ (Lamport's characterization of atomicity for
  single-writer registers).

:func:`check_atomic_bruteforce` independently verifies atomicity by
searching for explicit linearization points; the test suite
cross-validates the two on random histories.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Sequence

from repro.registers.history import History, Interval


@dataclasses.dataclass(frozen=True)
class CheckResult:
    """Outcome of a semantic check."""

    ok: bool
    level: str
    violations: Sequence[str] = ()

    def render(self) -> str:
        if self.ok:
            return f"history is {self.level}"
        lines = [f"history is NOT {self.level}:"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)


def _require_checkable(history: History, unique: bool = False) -> Optional[str]:
    """Safe/regular checks need sequential writes; atomicity's
    inversion check additionally needs distinct written values."""
    if not history.writes_are_sequential():
        return "writes overlap — not a single-writer history"
    if unique and not history.writes_are_unique():
        return "written values are not distinct — atomicity checker precondition"
    return None


def _last_completed_before(history: History, t: int) -> Hashable:
    """Value of the last write that responded before event ``t``."""
    best: Optional[Interval] = None
    for w in history.writes:
        if w.respond < t and (best is None or w.respond > best.respond):
            best = w
    return best.value if best is not None else history.initial


def _feasible_regular(history: History, read: Interval) -> List[Hashable]:
    """The regular-semantics feasible set for one read."""
    feasible = [_last_completed_before(history, read.invoke)]
    for w in history.writes:
        if w.overlaps(read):
            feasible.append(w.value)
    return feasible


def check_safe(history: History) -> CheckResult:
    """Check the safe-register condition (quiescent reads only)."""
    problem = _require_checkable(history)
    if problem:
        return CheckResult(ok=False, level="safe", violations=(problem,))
    violations = []
    for read in history.reads:
        if any(w.overlaps(read) for w in history.writes):
            continue  # overlapping reads are unconstrained for safe
        expected = _last_completed_before(history, read.invoke)
        if read.value != expected:
            violations.append(
                f"quiescent {read.render()} expected {expected!r}"
            )
    return CheckResult(ok=not violations, level="safe",
                       violations=tuple(violations))


def check_regular(history: History) -> CheckResult:
    """Check the regular-register condition."""
    problem = _require_checkable(history)
    if problem:
        return CheckResult(ok=False, level="regular", violations=(problem,))
    violations = []
    for read in history.reads:
        feasible = _feasible_regular(history, read)
        if read.value not in feasible:
            violations.append(
                f"{read.render()} outside feasible set {feasible!r}"
            )
    return CheckResult(ok=not violations, level="regular",
                       violations=tuple(violations))


def _write_index(history: History) -> Dict[Hashable, int]:
    """Map written value -> position in the writer's sequence.

    The initial value gets index 0; the i-th write gets i (values are
    distinct by precondition).
    """
    index = {history.initial: 0}
    for i, w in enumerate(history.writes, start=1):
        index[w.value] = i
    return index


def check_atomic(history: History) -> CheckResult:
    """Check atomicity: regular + no new/old inversion."""
    problem = _require_checkable(history, unique=True)
    if problem:
        return CheckResult(ok=False, level="atomic", violations=(problem,))
    regular = check_regular(history)
    if not regular.ok:
        return CheckResult(ok=False, level="atomic",
                           violations=regular.violations)
    index = _write_index(history)
    violations = []
    reads = history.reads
    for i, r1 in enumerate(reads):
        for r2 in reads[i + 1:]:
            if r1.precedes(r2) and index[r2.value] < index[r1.value]:
                violations.append(
                    f"new/old inversion: {r1.render()} then {r2.render()}"
                )
            elif r2.precedes(r1) and index[r1.value] < index[r2.value]:
                violations.append(
                    f"new/old inversion: {r2.render()} then {r1.render()}"
                )
    return CheckResult(ok=not violations, level="atomic",
                       violations=tuple(violations))


def check_atomic_bruteforce(history: History,
                            max_ops: int = 14) -> CheckResult:
    """Atomicity by explicit linearization search (small histories).

    Backtracking over all real-time-respecting total orders, checking
    that every read returns the latest preceding write.  Exponential —
    guarded by ``max_ops`` — but an independent oracle for testing the
    fast checker, and the *only* checker here that handles multi-writer
    histories (overlapping writes linearize like anything else; the
    fast checker's single-writer precondition does not apply).
    """
    ops = list(history)
    if len(ops) > max_ops:
        raise ValueError(
            f"history of {len(ops)} ops exceeds brute-force cap {max_ops}"
        )

    def feasible_next(done: List[Interval], remaining: List[Interval]):
        for op in remaining:
            # Real-time order: op may come next only if no remaining op
            # must precede it.
            if any(other.precedes(op) for other in remaining if other is not op):
                continue
            yield op

    def search(done: List[Interval], remaining: List[Interval],
               current: Hashable) -> bool:
        if not remaining:
            return True
        for op in feasible_next(done, remaining):
            if op.kind == "read" and op.value != current:
                continue
            nxt = op.value if op.kind == "write" else current
            rest = [o for o in remaining if o is not op]
            done.append(op)
            if search(done, rest, nxt):
                return True
            done.pop()
        return False

    ok = search([], ops, history.initial)
    return CheckResult(
        ok=ok, level="atomic",
        violations=() if ok else ("no valid linearization exists",),
    )

"""Running the consensus protocols on *constructed* registers.

The consensus simulator (:mod:`repro.sim`) assumes atomic registers and
serializes steps — legitimate, but it takes the registers on faith.
This adapter closes the loop: it executes any
:class:`~repro.sim.process.Automaton` protocol inside the interval-time
world of :mod:`repro.registers`, with every shared register backed by a
chosen rung of the construction tower (down to safe flickering bits),
and with reads and writes genuinely overlapping under an adversarial
interleaving.

This is the end-to-end form of the paper's implementability claim: the
two-processor protocol deciding consistently while its "atomic"
registers are in fact seqnum-patched regular cells built on safe bits.

Semantics notes:

* Each processor is one interval-world thread; it repeatedly samples a
  branch (coins at activation time, as ever), performs the operation
  through the construction's ``read_gen``/``write_gen`` (many primitive
  events, interleaved with everything else), then applies ``observe``.
* With an **atomic** backing, overlapping logical operations linearize,
  so this is a strictly more hostile (finer-grained) execution model
  than the serialized kernel — any safety property that survives here
  and in the serialized model has been tested from both sides.
* With a **sub-atomic** backing (plain regular or safe cells), the
  protocol's assumptions are deliberately violated; the adapter exists
  for those experiments too (how does the two-processor protocol fare
  on merely-regular registers? — spoiler: regular suffices for its
  consistency argument, garbage-under-overlap safe bits do not).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.registers.constructions import (
    AtomicFromRegular,
    CellRegister,
    Register,
)
from repro.registers.interval import IntervalSim
from repro.sim.ops import ReadOp, WriteOp
from repro.sim.process import Automaton
from repro.sim.rng import ReplayableRng


RegisterBacking = Callable[[IntervalSim, str, Hashable, tuple], Register]
"""Factory: (sim, name, initial, readers) -> a Register instance.

``readers`` is the tuple of reader pids from the protocol's
RegisterSpec; the returned register's ``read_gen`` is called with the
reading *pid* (not an index), so backings must either ignore it (bare
cells) or be wired per-pid.
"""


def atomic_backing(sim: IntervalSim, name: str, initial: Hashable,
                   readers: tuple) -> Register:
    """Reference backing: one atomic cell per register."""
    return CellRegister(sim, name, sim.atomic_cell(name, initial))


def regular_backing(sim: IntervalSim, name: str, initial: Hashable,
                    readers: tuple) -> Register:
    """A bare regular cell — no new/old inversion protection."""
    return CellRegister(sim, name, sim.regular_cell(name, initial, ()))


def safe_backing_for(domain: Sequence[Hashable]) -> RegisterBacking:
    """A bare *safe* cell backing: overlapped reads return garbage.

    This violates even the regularity the protocols' consistency
    arguments need; the experiment exists to show the assumption is
    load-bearing (expect occasional inconsistent decisions).
    """

    def backing(sim: IntervalSim, name: str, initial: Hashable,
                readers: tuple) -> Register:
        full_domain = tuple(domain) + (initial,)
        return CellRegister(
            sim, name, sim.safe_cell(name, initial, full_domain)
        )

    return backing


def seqnum_atomic_backing(sim: IntervalSim, name: str, initial: Hashable,
                          readers: tuple) -> Register:
    """The tower's SRSW atomic construction (regular + seqnums).

    Single-reader: use with SRSW-shaped protocols (the two-processor
    protocol, or ``ThreeUnboundedProtocol(layout="srsw")``).
    """
    if len(readers) != 1:
        raise ValueError(
            f"{name}: seqnum backing is single-reader; the protocol "
            f"declares readers {readers} — use an MRSW backing or the "
            "protocol's srsw layout"
        )
    return AtomicFromRegular(sim, name, initial, reader=readers[0])


def mrsw_atomic_backing(sim: IntervalSim, name: str, initial: Hashable,
                        readers: tuple) -> Register:
    """The tower's MRSW atomic construction, wired to protocol pids."""
    from repro.registers.constructions import MRSWAtomicFromSRSW

    class _PidMapped(Register):
        def __init__(self) -> None:
            super().__init__(sim, name)
            self._inner = MRSWAtomicFromSRSW(
                sim, name, initial, n_readers=len(readers)
            )
            self.cells.extend(self._inner.cells)
            self._index = {pid: i for i, pid in enumerate(readers)}

        def read_gen(self, reader: int):
            value = yield from self._inner.read_gen(self._index[reader])
            return value

        def write_gen(self, value: Hashable):
            yield from self._inner.write_gen(value)

    return _PidMapped()


@dataclasses.dataclass
class IntervalRunResult:
    """Outcome of one interval-world protocol execution."""

    decisions: Dict[int, Hashable]
    inputs: tuple
    logical_ops: int
    primitive_events: int
    completed: bool

    @property
    def consistent(self) -> bool:
        return len(set(self.decisions.values())) <= 1

    @property
    def nontrivial(self) -> bool:
        return all(v in self.inputs for v in self.decisions.values())


def run_on_constructed_registers(
    protocol: Automaton,
    inputs: Sequence[Hashable],
    seed: int = 0,
    backing: RegisterBacking = seqnum_atomic_backing,
    max_events: int = 500_000,
    max_steps_per_processor: int = 2_000,
) -> IntervalRunResult:
    """Execute ``protocol`` in the interval world on backed registers.

    Requires every shared register to have a single reader (the SRSW
    shape of the paper's headline protocols) unless the backing ignores
    its ``reader`` argument.
    """
    if len(inputs) != protocol.n_processes:
        raise SimulationError(
            f"expected {protocol.n_processes} inputs, got {len(inputs)}"
        )
    sim = IntervalSim(seed=seed)
    registers: Dict[str, Register] = {}
    for spec in protocol.registers():
        registers[spec.name] = backing(
            sim, spec.name, spec.initial, tuple(spec.readers)
        )

    decisions: Dict[int, Hashable] = {}
    rng = ReplayableRng(seed)

    def processor(pid: int):
        proc_rng = rng.child("proc", pid)
        state = protocol.initial_state(pid, inputs[pid])
        for _ in range(max_steps_per_processor):
            value = protocol.output(pid, state)
            if value is not None:
                decisions[pid] = value
                return
            branches = protocol.branches(pid, state)
            if len(branches) == 1:
                branch = branches[0]
            else:
                weights = [b.probability for b in branches]
                branch = branches[proc_rng.choice_index(weights)]
            op = branch.op
            if isinstance(op, ReadOp):
                result = yield from registers[op.register].read_gen(pid)
            else:
                assert isinstance(op, WriteOp)
                yield from registers[op.register].write_gen(op.value)
                result = None
            state = protocol.observe(pid, state, op, result)
        # Step budget exhausted undecided; leave no decision recorded.

    for pid in range(protocol.n_processes):
        sim.spawn(f"P{pid}", processor(pid))
    sim.run(max_events=max_events)

    logical_ops = 0  # not tracked per-op here; events are the metric
    return IntervalRunResult(
        decisions=dict(decisions),
        inputs=tuple(inputs),
        logical_ops=logical_ops,
        primitive_events=sim.total_cell_events,
        completed=len(decisions) == protocol.n_processes,
    )

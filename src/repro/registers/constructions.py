"""Lamport's register constructions, runnable in the interval model.

The tower, bottom to top:

1. :class:`CellRegister` — a bare cell exposed as a register (the
   safe/regular/atomic baselines).
2. :class:`RegularFromSafe` — a *regular* bit from a *safe* bit: the
   writer skips redundant writes, so a read only ever overlaps a write
   that actually changes the value, and "arbitrary bit" collapses to
   "old or new" (Lamport's construction 1 for bits).
3. :class:`UnaryRegularRegister` — a k-valued *regular* register from
   regular bits: value v is encoded as bit v set; the writer sets the
   new bit *then* clears the lower ones (downward), the reader scans
   upward and returns the first set bit.  The opposite sweep directions
   are what make the value read always a current-or-overlapping one
   (Lamport's construction 5).
4. :class:`AtomicFromRegular` — an *atomic* SRSW register from one
   regular register: the writer attaches an increasing sequence number
   and the single reader never returns an older sequence number than it
   has already returned, eliminating exactly the new/old inversions
   that separate regular from atomic.
5. :class:`MRSWAtomicFromSRSW` — an *atomic* n-reader register from
   n + n(n−1) SRSW atomic registers: one per reader for the writer plus
   a gossip matrix through which each reader republishes what it
   returned, so later reads by other readers can never return older
   values (the classic unbounded-timestamp construction).

Sequence numbers in constructions 4-5 are unbounded, as in the
classical literature; bounding them is a famously hard separate problem
and the paper's own route to boundedness is at the protocol level
(Section 6), not the register level.  DESIGN.md records this
substitution.

Every construction is exercised under adversarial interleavings and
graded by the semantic checkers — see :mod:`repro.registers.workload`
and benchmark E9.
"""

from __future__ import annotations

import abc
from typing import Generator, Hashable, List, Optional, Sequence, Tuple

from repro.registers.interval import BaseCell, IntervalSim


ReadGen = Generator[None, None, Hashable]
WriteGen = Generator[None, None, None]


class Register(abc.ABC):
    """A logical register built from cells inside one IntervalSim.

    ``read_gen``/``write_gen`` return generators whose yields are the
    interleaving points; drive them from :class:`IntervalSim` threads.
    """

    def __init__(self, sim: IntervalSim, name: str) -> None:
        self.sim = sim
        self.name = name
        self.cells: List[BaseCell] = []

    def _cell(self, cell: BaseCell) -> BaseCell:
        self.cells.append(cell)
        return cell

    @abc.abstractmethod
    def read_gen(self, reader: int) -> ReadGen:
        """Generator performing one logical read by ``reader``."""

    @abc.abstractmethod
    def write_gen(self, value: Hashable) -> WriteGen:
        """Generator performing one logical write."""

    @property
    def primitive_events(self) -> int:
        """Primitive cell events consumed so far (the E9 cost metric)."""
        return sum(cell.event_count for cell in self.cells)


class CellRegister(Register):
    """A bare cell as a register — the baselines of the tower."""

    def __init__(self, sim: IntervalSim, name: str, cell: BaseCell) -> None:
        super().__init__(sim, name)
        self._c = self._cell(cell)

    def read_gen(self, reader: int) -> ReadGen:
        value = yield from self.sim.read_cell(self._c)
        return value

    def write_gen(self, value: Hashable) -> WriteGen:
        yield from self.sim.write_cell(self._c, value)


class RegularFromSafe(Register):
    """A regular bit from a safe bit (skip redundant writes).

    A safe bit returns garbage only while a write is in progress; if
    the writer never rewrites the current value, any in-progress write
    is changing the bit, so "garbage in {0, 1}" coincides with "old or
    new" — which is regularity.
    """

    def __init__(self, sim: IntervalSim, name: str, initial: int) -> None:
        super().__init__(sim, name)
        self._bit = self._cell(
            sim.safe_cell(f"{name}.safebit", initial=initial, domain=(0, 1))
        )
        self._last_written = initial

    def read_gen(self, reader: int) -> ReadGen:
        value = yield from self.sim.read_cell(self._bit)
        return value

    def write_gen(self, value: Hashable) -> WriteGen:
        if value not in (0, 1):
            raise ValueError("RegularFromSafe stores bits")
        if value == self._last_written:
            return  # the skip that buys regularity
        self._last_written = value
        yield from self.sim.write_cell(self._bit, value)


class UnaryRegularRegister(Register):
    """k-valued regular register from regular bits (Lamport constr. 5).

    ``domain[i]`` is encoded as bit i.  Writer: set bit i, then clear
    bits i−1 .. 0.  Reader: scan bit 0 upward, return the first set
    bit's value.  The writer sweeps down while readers sweep up, so the
    first 1 a reader meets belongs to the most recent completed write
    or to a write it overlaps.
    """

    def __init__(self, sim: IntervalSim, name: str,
                 domain: Sequence[Hashable], initial: Hashable,
                 bit_factory: Optional[str] = "regular-from-safe") -> None:
        super().__init__(sim, name)
        self.domain = tuple(domain)
        if initial not in self.domain:
            raise ValueError("initial value outside domain")
        init_idx = self.domain.index(initial)
        self._bits: List[Register] = []
        for i, _v in enumerate(self.domain):
            bit_init = 1 if i == init_idx else 0
            if bit_factory == "regular-from-safe":
                bit = RegularFromSafe(sim, f"{name}.b{i}", initial=bit_init)
            else:
                bit = CellRegister(
                    sim, f"{name}.b{i}",
                    sim.regular_cell(f"{name}.b{i}", bit_init, (0, 1)),
                )
            self._bits.append(bit)
            self.cells.extend(bit.cells)

    def read_gen(self, reader: int) -> ReadGen:
        for i, bit in enumerate(self._bits):
            v = yield from bit.read_gen(reader)
            if v == 1:
                return self.domain[i]
        # Unreachable under the construction's invariant (some bit at or
        # above the current value is always set); returning the top
        # value keeps the generator total for defensive callers.
        return self.domain[-1]

    def write_gen(self, value: Hashable) -> WriteGen:
        idx = self.domain.index(value)
        yield from self._bits[idx].write_gen(1)
        for i in range(idx - 1, -1, -1):
            yield from self._bits[i].write_gen(0)


class AtomicFromRegular(Register):
    """SRSW atomic register from one regular register + sequence numbers.

    A regular register already returns only current-or-overlapping
    values; the one anomaly short of atomicity is the new/old inversion
    between two sequential reads.  Tagging writes with an increasing
    sequence number and making the reader monotone in it (never return
    a smaller sequence number than it already has) removes the anomaly.
    Single reader only — the reader's cache is reader-local state.
    """

    def __init__(self, sim: IntervalSim, name: str, initial: Hashable,
                 reader: int = 0) -> None:
        super().__init__(sim, name)
        self._reg = self._cell(
            sim.regular_cell(f"{name}.pair", initial=(0, initial), domain=())
        )
        self._seq = 0
        self._reader = reader
        self._cache: Tuple[int, Hashable] = (0, initial)

    def read_gen(self, reader: int) -> ReadGen:
        if reader != self._reader:
            raise ValueError(
                f"{self.name} is single-reader (reader {self._reader})"
            )
        pair = yield from self.sim.read_cell(self._reg)
        if pair[0] > self._cache[0]:
            self._cache = pair
        return self._cache[1]

    def write_gen(self, value: Hashable) -> WriteGen:
        self._seq += 1
        yield from self.sim.write_cell(self._reg, (self._seq, value))


class MRSWAtomicFromSRSW(Register):
    """n-reader atomic register from SRSW atomic registers.

    Layout: ``w2r[j]`` carries the writer's latest (seq, value) to
    reader j; ``r2r[i][j]`` lets reader i gossip what it last returned
    to reader j.  A read takes the maximum sequence number over its
    writer register and all gossip registers, republishes it, and
    returns its value — so anything a read returns is visible to every
    later read, which is exactly atomicity's no-inversion requirement
    across readers.
    """

    def __init__(self, sim: IntervalSim, name: str, initial: Hashable,
                 n_readers: int) -> None:
        super().__init__(sim, name)
        if n_readers < 1:
            raise ValueError("need at least one reader")
        self.n_readers = n_readers
        self._seq = 0
        self._w2r = [
            self._adopt(AtomicFromRegular(sim, f"{name}.w2r{j}", (0, initial),
                                          reader=j))
            for j in range(n_readers)
        ]
        self._r2r = [
            [
                self._adopt(
                    AtomicFromRegular(sim, f"{name}.r{i}to{j}", (0, initial),
                                      reader=j)
                ) if i != j else None
                for j in range(n_readers)
            ]
            for i in range(n_readers)
        ]
        self._initial = initial

    def _adopt(self, reg: Register) -> Register:
        self.cells.extend(reg.cells)
        return reg

    def read_gen(self, reader: int) -> ReadGen:
        best = yield from self._w2r[reader].read_gen(reader)
        for i in range(self.n_readers):
            if i == reader:
                continue
            pair = yield from self._r2r[i][reader].read_gen(reader)
            if pair[0] > best[0]:
                best = pair
        for j in range(self.n_readers):
            if j == reader:
                continue
            yield from self._r2r[reader][j].write_gen(best)
        return best[1]

    def write_gen(self, value: Hashable) -> WriteGen:
        self._seq += 1
        pair = (self._seq, value)
        for j in range(self.n_readers):
            yield from self._w2r[j].write_gen(pair)


class MWMRAtomicRegister(Register):
    """Multi-writer multi-reader atomic register from MRSW atomic ones.

    The top of the classical tower (one rung above anything the paper
    needs — its protocols are single-writer by design — included to
    complete the substrate).  Construction: each writer owns one MRSW
    atomic register readable by every agent.  A write collects all
    registers, picks timestamp (max + 1, writer-id), and installs
    (timestamp, value) in its own register; a read collects all
    registers and returns the lexicographically-maximal timestamp's
    value.

    Why it is atomic (sketch): timestamps of sequential writes strictly
    grow, because the later writer's collect sees the earlier write's
    register.  Two sequential reads cannot invert, because the later
    read's collect of every register starts after the earlier read's
    finished and MRSW-atomic register values' timestamps only grow.
    Unbounded timestamps, as everywhere in this file.

    Agents: writers are agents 0..n_writers−1, readers are agents
    n_writers..n_writers+n_readers−1 (writers must also read everyone's
    register to pick timestamps, so the underlying MRSW registers serve
    all agents).
    """

    def __init__(self, sim: IntervalSim, name: str, initial: Hashable,
                 n_writers: int, n_readers: int) -> None:
        super().__init__(sim, name)
        if n_writers < 1 or n_readers < 1:
            raise ValueError("need at least one writer and one reader")
        self.n_writers = n_writers
        self.n_readers = n_readers
        n_agents = n_writers + n_readers
        # Initial timestamp (0, -1) loses to every real write's (k, i).
        self._regs = []
        for w in range(n_writers):
            reg = MRSWAtomicFromSRSW(
                sim, f"{name}.w{w}", initial=((0, -1), initial),
                n_readers=n_agents,
            )
            self.cells.extend(reg.cells)
            self._regs.append(reg)

    def _collect(self, agent: int):
        best = None
        for reg in self._regs:
            pair = yield from reg.read_gen(agent)
            if best is None or pair[0] > best[0]:
                best = pair
        return best

    def write_by_gen(self, writer: int, value: Hashable) -> WriteGen:
        """One logical write by ``writer`` (an agent id < n_writers)."""
        if not 0 <= writer < self.n_writers:
            raise ValueError(f"unknown writer {writer}")
        best = yield from self._collect(writer)
        ts = (best[0][0] + 1, writer)
        yield from self._regs[writer].write_gen((ts, value))

    def read_gen(self, reader: int) -> ReadGen:
        """One logical read by reader index ``reader`` (< n_readers)."""
        if not 0 <= reader < self.n_readers:
            raise ValueError(f"unknown reader {reader}")
        agent = self.n_writers + reader
        best = yield from self._collect(agent)
        return best[1]

    def write_gen(self, value: Hashable) -> WriteGen:
        """Single-writer convenience: writes as writer 0."""
        yield from self.write_by_gen(0, value)


def build_tower(sim: IntervalSim, level: str, domain: Sequence[Hashable],
                initial: Hashable, n_readers: int = 1) -> Register:
    """Construct one register of the requested tower level.

    Levels: "safe-cell", "regular-cell", "atomic-cell" (baselines),
    "regular-from-safe" (binary only), "unary-regular",
    "srsw-atomic", "mrsw-atomic".
    """
    if level == "safe-cell":
        return CellRegister(sim, level,
                            sim.safe_cell("c", initial, domain))
    if level == "regular-cell":
        return CellRegister(sim, level,
                            sim.regular_cell("c", initial, domain))
    if level == "atomic-cell":
        return CellRegister(sim, level,
                            sim.atomic_cell("c", initial, domain))
    if level == "regular-from-safe":
        if set(domain) != {0, 1}:
            raise ValueError("regular-from-safe stores bits")
        return RegularFromSafe(sim, level, initial=initial)
    if level == "unary-regular":
        return UnaryRegularRegister(sim, level, domain, initial)
    if level == "srsw-atomic":
        return AtomicFromRegular(sim, level, initial)
    if level == "mrsw-atomic":
        return MRSWAtomicFromSRSW(sim, level, initial, n_readers)
    if level == "mwmr-atomic":
        return MWMRAtomicRegister(sim, level, initial, n_writers=2,
                                  n_readers=n_readers)
    raise ValueError(f"unknown tower level {level!r}")

"""Message-passing substrate and the Ben-Or baseline.

The paper positions its shared-register model against the classical
asynchronous *message-passing* model (its references [1] Ben-Or, [2]
Bracha–Toueg, [4] FLP): randomized agreement there is possible only
when fewer than half the processors may fail, whereas the register
protocols tolerate t = n − 1 — "Our protocols, on the other hand,
reach such agreement even in the case of t = n−1 possible crashes."

To measure that contrast rather than assert it, this subpackage
implements the other side:

* :mod:`repro.msgpass.net` — an asynchronous message-passing machine:
  processes are message-driven automata, an adversary with complete
  knowledge picks which in-flight message is delivered next (and may
  delay any message forever — pure asynchrony), fail-stop crashes;
* :mod:`repro.msgpass.benor` — Ben-Or's randomized binary consensus
  (the paper's reference [1]): two-phase rounds, majority suggestion,
  t+1-witness decision, coin flips on confusion;
* :mod:`repro.msgpass.adversaries` — delivery schedulers, including
  the partition adversary that exhibits the t ≥ n/2 impossibility.

Benchmark E10 runs Ben-Or at t < n/2 (correct, terminating) and at
t ≥ n/2 (the partition adversary splits the system into two deciding
halves), next to the register protocols at t = n − 1.
"""

from repro.msgpass.net import (
    Message,
    MPAutomaton,
    MPRunResult,
    MPSimulation,
)
from repro.msgpass.benor import BenOrProtocol
from repro.msgpass.adversaries import (
    DeliveryScheduler,
    FifoDelivery,
    PartitionAdversary,
    RandomDelivery,
)

__all__ = [
    "Message",
    "MPAutomaton",
    "MPRunResult",
    "MPSimulation",
    "BenOrProtocol",
    "DeliveryScheduler",
    "FifoDelivery",
    "PartitionAdversary",
    "RandomDelivery",
]

"""Delivery schedulers for the message-passing machine.

A delivery scheduler's ``choose(sim)`` returns one of:

* a :class:`~repro.msgpass.net.Message` from ``sim.deliverable()`` —
  deliver it now;
* an ``int`` — fail-stop that process (crash injection);
* ``None`` — the adversary rests (no message it is willing to deliver);
  the run ends as *stuck*, which in a fully asynchronous system is a
  legal fate for messages the adversary delays forever.

The star of the family is :class:`PartitionAdversary`: it delivers
messages only within declared groups, holding all cross-group traffic
forever.  With waiting threshold n − t and t ≥ n/2 each half of an even
split can satisfy its quorums alone, and Ben-Or's halves decide their
own inputs — the Bracha–Toueg impossibility as an executable schedule.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Union

from repro.msgpass.net import Message, MPSimulation
from repro.sim.rng import ReplayableRng


Choice = Union[Message, int, None]


class DeliveryScheduler(abc.ABC):
    """Base class for delivery adversaries."""

    @abc.abstractmethod
    def choose(self, sim: MPSimulation) -> Choice:
        """Pick the next delivery / crash, or ``None`` to rest."""

    @property
    def name(self) -> str:
        return type(self).__name__


class _CrashList:
    """Mixin helper: crash a fixed set of processes before anything else."""

    def __init__(self, crash: Sequence[int] = ()) -> None:
        self._to_crash: List[int] = list(crash)

    def pending_crash(self, sim: MPSimulation) -> Optional[int]:
        while self._to_crash:
            pid = self._to_crash.pop(0)
            if pid not in sim.crashed:
                return pid
        return None


class RandomDelivery(DeliveryScheduler, _CrashList):
    """Uniformly random delivery order (a fair-ish network)."""

    def __init__(self, rng: ReplayableRng,
                 crash: Sequence[int] = ()) -> None:
        _CrashList.__init__(self, crash)
        self._rng = rng

    def choose(self, sim: MPSimulation) -> Choice:
        pid = self.pending_crash(sim)
        if pid is not None:
            return pid
        deliverable = sim.deliverable()
        if not deliverable:
            return None
        return self._rng.choice(deliverable)


class FifoDelivery(DeliveryScheduler, _CrashList):
    """Deliver in send order — the most benign network."""

    def __init__(self, crash: Sequence[int] = ()) -> None:
        _CrashList.__init__(self, crash)

    def choose(self, sim: MPSimulation) -> Choice:
        pid = self.pending_crash(sim)
        if pid is not None:
            return pid
        deliverable = sim.deliverable()
        if not deliverable:
            return None
        return min(deliverable, key=lambda m: m.uid)


class PartitionAdversary(DeliveryScheduler):
    """Deliver only within groups; cross-group mail is delayed forever.

    ``groups`` is a list of disjoint pid lists.  Messages whose sender
    and destination lie in the same group are delivered (round-robin by
    uid); everything else waits until the heat death of the run.  No
    process is crashed — the damage is pure asynchrony.
    """

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        flat = [pid for g in groups for pid in g]
        if len(set(flat)) != len(flat):
            raise ValueError("groups must be disjoint")
        self._group_of = {pid: i for i, g in enumerate(groups)
                          for pid in g}

    def _intra(self, message: Message) -> bool:
        gs = self._group_of.get(message.sender)
        gd = self._group_of.get(message.dest)
        return gs is not None and gs == gd

    def choose(self, sim: MPSimulation) -> Choice:
        candidates = [m for m in sim.deliverable() if self._intra(m)]
        if not candidates:
            return None
        return min(candidates, key=lambda m: m.uid)

"""Ben-Or's randomized consensus (the paper's reference [1]).

    M. Ben-Or, "Another Advantage of Free Choice: Completely
    Asynchronous Agreement Protocols", PODC 1983.

Binary consensus for n processes of which at most t may fail-stop,
correct when **t < n/2** — the bound the paper contrasts its register
protocols against.  Each round has two phases:

* phase 1: broadcast ``(r, 1, x)``; collect n − t phase-1 votes; if
  more than n/2 carry the same v, suggest w = v, else suggest ⊥;
* phase 2: broadcast ``(r, 2, w)``; collect n − t suggestions;

  - ≥ t + 1 copies of the same v ≠ ⊥  →  **decide v**,
  - ≥ 1 copy of some v ≠ ⊥           →  adopt x = v,
  - none                             →  x = fair coin;

  then start round r + 1.

Quorum intersection (two sets of n − t voters overlap in a correct
process when t < n/2) makes phase-1 majorities unique, which gives
consistency; the coin gives termination with probability 1 against any
delivery adversary.  With t ≥ n/2 the waiting thresholds are
satisfiable inside *disjoint* halves of the system, and the partition
adversary of :mod:`repro.msgpass.adversaries` makes the two halves
decide differently — the Bracha–Toueg impossibility exhibited as a run
(benchmark E10).

Deciders halt; to keep laggards live without them, a decider broadcasts
a final ``("decide", v)`` message which any receiver adopts immediately
(the standard reliable-relay finish).
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Hashable, List, Optional, Sequence, Tuple

from repro.msgpass.net import MPAutomaton
from repro.sim.rng import ReplayableRng


#: A suggestion of "no majority seen" in phase 2.
NO_MAJORITY = "⊥"


@dataclasses.dataclass(frozen=True)
class BenOrState:
    """Process state: current estimate, position, and the vote inbox.

    ``inbox`` holds (round, phase, sender, value) quadruples; senders
    are unique per (round, phase) because correct processes vote once.
    """

    x: Hashable
    round: int = 1
    phase: int = 1
    inbox: FrozenSet[Tuple[int, int, int, Hashable]] = frozenset()
    output: Optional[Hashable] = None


class BenOrProtocol(MPAutomaton):
    """Ben-Or consensus with a configurable failure budget t.

    ``t`` is the *assumed* maximum number of crashes (the waiting
    threshold is n − t).  Correctness requires t < n/2; larger values
    are accepted deliberately so the impossibility experiments can show
    what goes wrong.
    """

    def __init__(self, n: int, t: int,
                 values: Sequence[Hashable] = (0, 1),
                 thresholds: str = "absolute") -> None:
        if n < 2:
            raise ValueError("need at least two processes")
        if not 0 <= t < n:
            raise ValueError("need 0 <= t < n")
        if len(set(values)) != 2:
            raise ValueError("Ben-Or is binary")
        if thresholds not in ("absolute", "relative"):
            raise ValueError(f"unknown thresholds mode {thresholds!r}")
        self.n_processes = n
        self.t = t
        self.values = tuple(values)
        # Bracha-Toueg says *no* protocol works at t >= n/2; Ben-Or's
        # two possible failure shapes at that point are both exhibited:
        #
        # * "absolute" (the real protocol): majorities are counted out
        #   of n and decisions need t+1 witnesses.  At t >= n/2 these
        #   thresholds become unreachable from n-t votes, so a
        #   partition (or even a unanimous run) simply never decides —
        #   liveness dies, safety survives.
        # * "relative" (the tempting broken generalization): majorities
        #   and decisions are counted out of the n-t votes actually
        #   collected.  Unsafe — measurably so even at t < n/2 (two
        #   quorums can see different relative majorities), and under a
        #   t >= n/2 partition two disjoint halves each satisfy their
        #   own thresholds and decide their own inputs on every run.
        #   Kept as the control group showing it is exactly the
        #   absolute thresholds that buy Ben-Or its safety.
        self.thresholds = thresholds

    @property
    def name(self) -> str:
        return f"BenOr(n={self.n_processes}, t={self.t})"

    # ------------------------------------------------------------------

    def initial_state(self, pid: int, input_value: Hashable) -> BenOrState:
        if input_value not in self.values:
            raise ValueError(f"input {input_value!r} outside {self.values}")
        return BenOrState(x=input_value)

    def _broadcast(self, payload: Hashable) -> List[Tuple[int, Hashable]]:
        return [(dest, payload) for dest in range(self.n_processes)]

    def on_start(self, pid: int, state: BenOrState, rng: ReplayableRng):
        return state, self._broadcast(("vote", 1, 1, state.x))

    def _votes(self, state: BenOrState, rnd: int,
               phase: int) -> List[Hashable]:
        return [v for (r, p, _s, v) in state.inbox
                if r == rnd and p == phase]

    def _advance(self, state: BenOrState,
                 rng: ReplayableRng) -> Tuple[BenOrState, List[Tuple[int, Hashable]]]:
        """Process the inbox as far as possible (handles early arrivals)."""
        n, t = self.n_processes, self.t
        sends: List[Tuple[int, Hashable]] = []
        while True:
            votes = self._votes(state, state.round, state.phase)
            if len(votes) < n - t:
                return state, sends
            if state.phase == 1:
                # Majority suggestion (out of n, or of the collected
                # votes in the broken "relative" mode).
                majority_base = n if self.thresholds == "absolute" \
                    else len(votes)
                suggestion = NO_MAJORITY
                for v in self.values:
                    if sum(1 for x in votes if x == v) * 2 > majority_base:
                        suggestion = v
                        break
                sends += self._broadcast(
                    ("vote", state.round, 2, suggestion)
                )
                state = dataclasses.replace(state, phase=2)
                continue
            # Phase 2: decide / adopt / flip.
            concrete = [v for v in votes if v != NO_MAJORITY]
            counts = {
                v: sum(1 for x in concrete if x == v) for v in set(concrete)
            }
            decide_quorum = (t + 1) if self.thresholds == "absolute" \
                else len(votes)
            decided = next(
                (v for v, c in counts.items() if c >= decide_quorum), None
            )
            if decided is not None:
                sends += self._broadcast(("decide", decided))
                return dataclasses.replace(state, output=decided), sends
            if concrete:
                new_x = concrete[0]
            else:
                new_x = self.values[1] if rng.coin() else self.values[0]
            state = dataclasses.replace(
                state, x=new_x, round=state.round + 1, phase=1
            )
            sends += self._broadcast(("vote", state.round, 1, new_x))

    def on_message(self, pid: int, state: BenOrState, sender: int,
                   payload: Hashable, rng: ReplayableRng):
        kind = payload[0]
        if kind == "decide":
            _kind, v = payload
            return dataclasses.replace(state, output=v), []
        _kind, rnd, phase, value = payload
        if rnd < state.round or (rnd == state.round
                                 and phase < state.phase):
            # A vote from a stage this process has already completed:
            # it can never contribute to a waiting threshold again.
            # Dropping it keeps the inbox (and hence per-delivery cost)
            # bounded by the round spread instead of the run length.
            return state, []
        entry = (rnd, phase, sender, value)
        # A duplicate (same sender, round, phase) is impossible from
        # correct processes; the frozenset makes it harmless anyway.
        state = dataclasses.replace(state, inbox=state.inbox | {entry})
        state, sends = self._advance(state, rng)
        # Prune votes consumed by the stages just completed.
        pruned = frozenset(
            e for e in state.inbox
            if e[0] > state.round
            or (e[0] == state.round and e[1] >= state.phase)
        )
        if pruned != state.inbox:
            state = dataclasses.replace(state, inbox=pruned)
        return state, sends

    def output(self, pid: int, state: BenOrState) -> Optional[Hashable]:
        return state.output

"""The asynchronous message-passing machine.

Mirrors the structure of :mod:`repro.sim` but for the model the paper
compares against: processes communicate by sending messages into an
unbounded network, and the adversary — again with complete knowledge of
states and in-flight traffic — chooses which message is delivered next.
Messages can be delayed arbitrarily (never dropped unless the recipient
crashed), which is precisely the asynchrony FLP and Ben-Or live in.

Processes are message-driven automata:

* :meth:`MPAutomaton.on_start` fires once per process and returns its
  initial broadcast;
* :meth:`MPAutomaton.on_message` consumes one delivered message and
  returns the new state plus any messages to send (coin flips draw from
  the per-process stream passed in — sampled at delivery time, so the
  adversary cannot foresee them);
* :meth:`MPAutomaton.output` exposes decisions, as in the register
  world.

Fail-stop crashes: a crashed process receives nothing further and sends
nothing further; messages already sent by it remain deliverable (they
left the building before the crash).
"""

from __future__ import annotations

import abc
import dataclasses
import itertools
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.rng import ReplayableRng


@dataclasses.dataclass(frozen=True)
class Message:
    """One in-flight message.

    ``uid`` disambiguates identical payloads so the network is a true
    multiset; delivery order is entirely up to the adversary.
    """

    sender: int
    dest: int
    payload: Hashable
    uid: int

    def render(self) -> str:
        return f"{self.sender}->{self.dest}: {self.payload!r}"


class MPAutomaton(abc.ABC):
    """A message-passing protocol (one automaton for all processes)."""

    n_processes: int = 0

    @abc.abstractmethod
    def initial_state(self, pid: int, input_value: Hashable) -> Hashable:
        """State before the start event."""

    @abc.abstractmethod
    def on_start(self, pid: int, state: Hashable,
                 rng: ReplayableRng) -> Tuple[Hashable, Sequence[Tuple[int, Hashable]]]:
        """The process's first action; returns (state, [(dest, payload)])."""

    @abc.abstractmethod
    def on_message(self, pid: int, state: Hashable, sender: int,
                   payload: Hashable,
                   rng: ReplayableRng) -> Tuple[Hashable, Sequence[Tuple[int, Hashable]]]:
        """Consume one delivered message; returns (state, sends)."""

    @abc.abstractmethod
    def output(self, pid: int, state: Hashable) -> Optional[Hashable]:
        """Decided value, or None."""

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclasses.dataclass
class MPRunResult:
    """Summary of one message-passing run."""

    protocol_name: str
    inputs: Tuple[Hashable, ...]
    decisions: Dict[int, Hashable]
    deliveries: int
    messages_sent: int
    crashed: frozenset
    stuck: bool  # no deliverable message, yet undecided live processes

    @property
    def decided_values(self) -> set:
        return set(self.decisions.values())

    @property
    def consistent(self) -> bool:
        return len(self.decided_values) <= 1

    @property
    def all_live_decided(self) -> bool:
        n = len(self.inputs)
        return all(
            pid in self.decisions
            for pid in range(n) if pid not in self.crashed
        )


class MPSimulation:
    """One run: adversary-driven delivery until decision or exhaustion.

    The delivery scheduler sees the full simulation (states, in-flight
    messages) and returns the :class:`Message` to deliver next, or a
    pid to crash (see :mod:`repro.msgpass.adversaries`).
    """

    def __init__(
        self,
        protocol: MPAutomaton,
        inputs: Sequence[Hashable],
        scheduler,
        rng: ReplayableRng,
    ) -> None:
        if protocol.n_processes < 1:
            raise SimulationError("protocol declares no processes")
        if len(inputs) != protocol.n_processes:
            raise SimulationError(
                f"expected {protocol.n_processes} inputs, got {len(inputs)}"
            )
        self.protocol = protocol
        self.inputs = tuple(inputs)
        self.scheduler = scheduler
        self.states: List[Hashable] = []
        self.in_flight: List[Message] = []
        self.crashed: frozenset = frozenset()
        self.decisions: Dict[int, Hashable] = {}
        self.deliveries = 0
        self.messages_sent = 0
        self._uid = itertools.count()
        self._rngs = [
            rng.child("mp-proc", pid) for pid in range(protocol.n_processes)
        ]
        # Start events: every process boots and broadcasts.
        for pid in range(protocol.n_processes):
            state = protocol.initial_state(pid, self.inputs[pid])
            state, sends = protocol.on_start(pid, state, self._rngs[pid])
            self.states.append(state)
            self._send_all(pid, sends)
            self._note_decision(pid)

    # ------------------------------------------------------------------

    def _send_all(self, sender: int,
                  sends: Sequence[Tuple[int, Hashable]]) -> None:
        for dest, payload in sends:
            if not 0 <= dest < self.protocol.n_processes:
                raise SimulationError(f"message to unknown process {dest}")
            self.in_flight.append(
                Message(sender=sender, dest=dest, payload=payload,
                        uid=next(self._uid))
            )
            self.messages_sent += 1

    def _note_decision(self, pid: int) -> None:
        value = self.protocol.output(pid, self.states[pid])
        if value is not None and pid not in self.decisions:
            self.decisions[pid] = value

    def deliverable(self) -> List[Message]:
        """Messages whose recipients are alive and undecided.

        Decided processes have halted (as in the register model); their
        unconsumed mail is irrelevant to the run's outcome.
        """
        return [
            m for m in self.in_flight
            if m.dest not in self.crashed and m.dest not in self.decisions
        ]

    def crash(self, pid: int) -> None:
        if pid in self.crashed:
            raise SimulationError(f"process {pid} already crashed")
        self.crashed = self.crashed | {pid}

    def deliver(self, message: Message) -> None:
        if message not in self.in_flight:
            raise SimulationError("delivering a message not in flight")
        if message.dest in self.crashed:
            raise SimulationError("delivering to a crashed process")
        self.in_flight.remove(message)
        pid = message.dest
        if pid in self.decisions:
            return  # decided processes ignore mail
        state, sends = self.protocol.on_message(
            pid, self.states[pid], message.sender, message.payload,
            self._rngs[pid],
        )
        self.states[pid] = state
        self._send_all(pid, sends)
        self.deliveries += 1
        self._note_decision(pid)

    @property
    def finished(self) -> bool:
        n = self.protocol.n_processes
        return all(
            pid in self.decisions or pid in self.crashed
            for pid in range(n)
        )

    def run(self, max_deliveries: int = 100_000) -> MPRunResult:
        """Deliver until every live process decides, the scheduler gives
        up, or the budget runs out."""
        stuck = False
        while not self.finished and self.deliveries < max_deliveries:
            choice = self.scheduler.choose(self)
            if choice is None:
                stuck = True
                break
            if isinstance(choice, int):
                self.crash(choice)
                continue
            self.deliver(choice)
        return MPRunResult(
            protocol_name=self.protocol.name,
            inputs=self.inputs,
            decisions=dict(self.decisions),
            deliveries=self.deliveries,
            messages_sent=self.messages_sent,
            crashed=self.crashed,
            stuck=stuck or (not self.finished and not self.deliverable()),
        )
